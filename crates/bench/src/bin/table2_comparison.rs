//! Table II: "Comparison of results" — the headline table.
//!
//! Columns: I4 / I7 / I10 (threshold-only decisions over growing function
//! subsets, best graph selected), C4 / C7 / C10 (same subsets with the best
//! decision criterion chosen from {threshold, equal-width regions, k-means
//! regions} per function), and W (accuracy-weighted average combination).
//! Rows: Fp-measure, F-measure and Rand index for both datasets.

use weber_bench::{fmt, paper_protocol, prepared_weps, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::blocking::PreparedDataset;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_eval::MetricSet;
use weber_simfun::functions::{subset_i10, subset_i4, subset_i7};

fn columns(prepared: &PreparedDataset) -> Vec<(&'static str, MetricSet)> {
    let protocol = paper_protocol();
    let run = |cfg: ResolverConfig| {
        run_experiment(prepared, &cfg, &protocol)
            .expect("valid configuration")
            .mean
    };
    vec![
        ("I4", run(ResolverConfig::threshold_suite(subset_i4()))),
        ("I7", run(ResolverConfig::threshold_suite(subset_i7()))),
        ("I10", run(ResolverConfig::threshold_suite(subset_i10()))),
        ("C4", run(ResolverConfig::accuracy_suite(subset_i4()))),
        ("C7", run(ResolverConfig::accuracy_suite(subset_i7()))),
        ("C10", run(ResolverConfig::accuracy_suite(subset_i10()))),
        ("W", run(ResolverConfig::weighted_average(subset_i10()))),
    ]
}

fn print_dataset(name: &str, prepared: &PreparedDataset) {
    let cols = columns(prepared);
    println!("{name}");
    let header: Vec<&str> = std::iter::once("metric")
        .chain(cols.iter().map(|(l, _)| *l))
        .collect();
    let rows = vec![
        std::iter::once("Fp-measure".to_string())
            .chain(cols.iter().map(|(_, m)| fmt(m.fp)))
            .collect::<Vec<_>>(),
        std::iter::once("F-measure".to_string())
            .chain(cols.iter().map(|(_, m)| fmt(m.f)))
            .collect(),
        std::iter::once("RandIndex".to_string())
            .chain(cols.iter().map(|(_, m)| fmt(m.rand)))
            .collect(),
    ];
    print_table(&header, &rows);

    // The paper's shape claims, checked numerically.
    let by = |label: &str| {
        cols.iter()
            .find(|(l, _)| *l == label)
            .expect("column exists")
            .1
    };
    let (i4, i7, i10) = (by("I4"), by("I7"), by("I10"));
    let (c4, c7, c10) = (by("C4"), by("C7"), by("C10"));
    // Selection noise across 5 runs makes near-ties common, as in the
    // paper's own small increments; allow a small tolerance.
    let tol = 0.015;
    println!();
    println!(
        "shape checks (tol {tol}): I4<=I7<=I10 (Fp): {}; C4<=C7<=C10 (Fp): {}; Ck>=Ik for all k: {}",
        i4.fp <= i7.fp + tol && i7.fp <= i10.fp + tol,
        c4.fp <= c7.fp + tol && c7.fp <= c10.fp + tol,
        c4.fp >= i4.fp - tol && c7.fp >= i7.fp - tol && c10.fp >= i10.fp - tol,
    );
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "table2_comparison",
        DEFAULT_SEED,
        "I4/I7/I10/C4/C7/C10/W, both datasets, 10 percent training, 5 runs averaged",
    );
    println!("Table II — comparison of results (10% training, 5 runs averaged)");
    println!();
    let www05 = prepared_www05(DEFAULT_SEED);
    print_dataset("WWW'05-like dataset", &www05);
    let weps = prepared_weps(DEFAULT_SEED);
    print_dataset("WePS-like dataset", &weps);
    println!("paper reference (real data): WWW'05 Fp I10=0.8232 C10=0.8774 W=0.8371;");
    println!("                             WePS   Fp I10=0.7682 C10=0.7880 W=0.7785");
}
