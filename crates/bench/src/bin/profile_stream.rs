//! Phase breakdown of the streaming ingest scenario: where does the wall
//! time of `perf --docs N` actually go? Not part of the reported numbers —
//! a diagnosis tool for optimisation work.

use std::time::Instant;

use weber_corpus::{generate, presets};
use weber_extract::pipeline::Extractor;
use weber_simfun::block::PreparedBlock;
use weber_simfun::functions::standard_suite;
use weber_stream::{SeedDocument, StreamConfig, StreamResolver};
use weber_textindex::tfidf::TfIdf;

fn main() {
    let total: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let dataset = generate(&presets::tiny(3));
    let source = &dataset.blocks[0];
    let truth = source.truth();
    let seed_docs: Vec<SeedDocument> = source
        .documents
        .iter()
        .zip(0..)
        .map(|(d, i)| SeedDocument {
            text: d.text.clone(),
            url: d.url.clone(),
            label: truth.label_of(i),
        })
        .collect();
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();

    let t = Instant::now();
    let summary = stream.seed(&source.query_name, &seed_docs).unwrap();
    println!(
        "seed: {} docs in {:.3}s (model {} / {})",
        seed_docs.len(),
        t.elapsed().as_secs_f64(),
        summary.function,
        summary.criterion,
    );

    let mut ingest_total = 0.0f64;
    let mut slowest: Vec<(usize, f64)> = Vec::new();
    for i in seed_docs.len()..total {
        let d = &source.documents[i % source.documents.len()];
        let t = Instant::now();
        stream
            .ingest(&source.query_name, &d.text, d.url.as_deref())
            .unwrap();
        let dt = t.elapsed().as_secs_f64();
        ingest_total += dt;
        slowest.push((i + 1, dt));
    }
    slowest.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "ingest: {} docs in {ingest_total:.3}s",
        total - seed_docs.len()
    );
    println!("slowest arrivals (block size, secs):");
    for (n, dt) in slowest.iter().take(8) {
        println!("  n={n}: {dt:.4}s");
    }
    let tail: f64 = slowest.iter().skip(8).map(|&(_, dt)| dt).sum();
    println!("  rest: {tail:.4}s");

    // Per-function graph-build cost at the final block size.
    let extractor = Extractor::new(&dataset.gazetteer);
    let features: Vec<_> = (0..total)
        .map(|i| {
            let d = &source.documents[i % source.documents.len()];
            extractor.extract(&d.text, d.url.as_deref())
        })
        .collect();
    let block = PreparedBlock::new(source.query_name.clone(), features, TfIdf::default());
    println!("full graph builds at n={total}:");
    for f in standard_suite() {
        let t = Instant::now();
        std::hint::black_box(block.similarity_graph_with(f.as_ref(), None));
        println!("  {}: {:.4}s", f.name(), t.elapsed().as_secs_f64());
    }
}
