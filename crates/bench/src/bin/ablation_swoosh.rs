//! Ablation: merge-based R-Swoosh vs the paper's pairwise framework.
//!
//! §VI discusses the merge-based line of work ([5], [7]): records merge as
//! soon as they are found equivalent, with combined confidences. This
//! sweep runs R-Swoosh with a supervision-fitted profile matcher at
//! several match thresholds and compares against the paper's combined
//! technique (C10) under the same protocol.

use weber_bench::{fmt, paper_protocol, prepared_weps, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::blocking::PreparedDataset;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_core::supervision::Supervision;
use weber_core::swoosh::{r_swoosh, ProfileMatcher};
use weber_eval::{MetricSet, RunAverage};
use weber_simfun::functions::subset_i10;

fn swoosh_row(prepared: &PreparedDataset, threshold: f64) -> (MetricSet, f64) {
    let protocol = paper_protocol();
    let mut overall = RunAverage::new();
    let mut confidence_sum = 0.0;
    let mut confidence_n = 0usize;
    for nb in &prepared.blocks {
        let mut avg = RunAverage::new();
        for run in 0..protocol.runs {
            let sup = Supervision::sample_from_truth(
                &nb.truth,
                protocol.train_fraction,
                protocol.base_seed + run,
            );
            let matcher = ProfileMatcher::fit(&nb.block, &sup, threshold);
            let out = r_swoosh(&nb.block, &matcher);
            avg.push(MetricSet::evaluate(&out.partition, &nb.truth));
            for r in &out.records {
                confidence_sum += r.confidence;
                confidence_n += 1;
            }
        }
        overall.push(avg.mean().expect("runs > 0"));
    }
    (
        overall.mean().expect("blocks > 0"),
        confidence_sum / confidence_n.max(1) as f64,
    )
}

fn sweep(label: &str, prepared: &PreparedDataset) {
    println!("{label}");
    let protocol = paper_protocol();
    let mut rows = Vec::new();
    let c10 = run_experiment(
        prepared,
        &ResolverConfig::accuracy_suite(subset_i10()),
        &protocol,
    )
    .expect("valid configuration")
    .mean;
    rows.push(vec![
        "pairwise C10".to_string(),
        fmt(c10.fp),
        fmt(c10.f),
        fmt(c10.rand),
        "-".to_string(),
    ]);
    for threshold in [0.4, 0.5, 0.6, 0.7] {
        let (m, mean_confidence) = swoosh_row(prepared, threshold);
        rows.push(vec![
            format!("r-swoosh t={threshold}"),
            fmt(m.fp),
            fmt(m.f),
            fmt(m.rand),
            fmt(mean_confidence),
        ]);
    }
    print_table(
        &[
            "method",
            "Fp-measure",
            "F-measure",
            "RandIndex",
            "mean conf",
        ],
        &rows,
    );
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_swoosh",
        DEFAULT_SEED,
        "merge-based R-Swoosh vs pairwise framework, both datasets, 5 runs averaged",
    );
    println!("Ablation — merge-based R-Swoosh vs pairwise framework (5 runs averaged)");
    println!();
    sweep("WWW'05-like dataset", &prepared_www05(DEFAULT_SEED));
    sweep("WePS-like dataset", &prepared_weps(DEFAULT_SEED));
}
