//! Blocking-quality harness: comparisons avoided vs pair recall.
//!
//! Runs every `weber-block` strategy (token, meta, lsh) over a generated
//! dirty corpus and emits one machine-readable `BENCH_block.json` report:
//! per strategy the candidate-pair count, the fraction of brute-force
//! comparisons it implies, the pair recall against the corpus's global
//! ground truth, and the best wall time over `--reps` repetitions. This is
//! the recall-vs-comparisons trade-off curve of the blocking literature,
//! one point per strategy.
//!
//! `--smoke` switches to the small preset with one rep for CI;
//! `--bench-out DIR` relocates the report (shared with the perf harness).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use weber_block::{Blocker, BlockingConfig, DocRecord, Strategy};
use weber_corpus::{dirty, dirty_small, generate_dirty, DirtyCorpus};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StrategyReport {
    strategy: String,
    candidate_pairs: u64,
    brute_force_pairs: u64,
    /// `candidate_pairs / brute_force_pairs`.
    comparison_frac: f64,
    comparisons_avoided: u64,
    pair_recall: f64,
    blocks: u64,
    token_blocks: u64,
    /// Best wall time over the reps, seconds.
    wall_seconds: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BlockReport {
    scenario: String,
    preset: String,
    seed: u64,
    docs: u64,
    entities: u64,
    truth_pairs: u64,
    reps: u64,
    strategies: Vec<StrategyReport>,
}

struct Options {
    seed: u64,
    reps: usize,
    smoke: bool,
    out: String,
    bench_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            seed: weber_bench::DEFAULT_SEED,
            reps: 3,
            smoke: false,
            out: "BENCH_block.json".into(),
            bench_out: None,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed").parse().expect("--seed: integer"),
            "--reps" => opts.reps = value("--reps").parse::<usize>().expect("--reps").max(1),
            "--out" => opts.out = value("--out"),
            "--bench-out" => opts.bench_out = Some(value("--bench-out")),
            "--smoke" => {
                opts.smoke = true;
                opts.reps = 1;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if let Some(dir) = &opts.bench_out {
        opts.out = weber_bench::redirect_into(dir, &opts.out);
    }
    opts
}

fn run_strategy(
    corpus: &DirtyCorpus,
    truth: &[(usize, usize)],
    strategy: Strategy,
    reps: usize,
) -> StrategyReport {
    let docs: Vec<DocRecord> = corpus
        .documents
        .iter()
        .map(|d| DocRecord {
            text: &d.text,
            url: d.url.as_deref(),
        })
        .collect();
    let blocker = Blocker::new(BlockingConfig::default().with_strategy(strategy));
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = blocker.block(&docs);
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    let out = outcome.expect("at least one rep");
    StrategyReport {
        strategy: strategy.name().to_string(),
        candidate_pairs: out.stats.candidate_pairs,
        brute_force_pairs: out.stats.brute_force_pairs,
        comparison_frac: out.stats.comparison_frac(),
        comparisons_avoided: out.stats.comparisons_avoided(),
        pair_recall: out.pair_recall(truth),
        blocks: out.stats.blocks_built as u64,
        token_blocks: out.stats.token_blocks as u64,
        wall_seconds: best,
    }
}

fn main() {
    let opts = parse_args();
    let config = if opts.smoke {
        dirty_small(opts.seed)
    } else {
        dirty(opts.seed)
    };
    let corpus = generate_dirty(&config);
    let truth = corpus.truth_pairs();
    eprintln!(
        "blocking '{}' (seed {}): {} docs, {} entities, {} truth pairs",
        corpus.label,
        corpus.seed,
        corpus.len(),
        corpus.entities,
        truth.len()
    );

    let strategies: Vec<StrategyReport> = [Strategy::Token, Strategy::Meta, Strategy::Lsh]
        .into_iter()
        .map(|s| {
            let r = run_strategy(&corpus, &truth, s, opts.reps);
            eprintln!(
                "  {:5} {:>9} pairs ({:>5.1}% of brute force)  recall {:.4}  {:.3}s",
                r.strategy,
                r.candidate_pairs,
                r.comparison_frac * 100.0,
                r.pair_recall,
                r.wall_seconds
            );
            r
        })
        .collect();

    let report = BlockReport {
        scenario: "block_candidates".into(),
        preset: corpus.label.clone(),
        seed: corpus.seed,
        docs: corpus.len() as u64,
        entities: u64::from(corpus.entities),
        truth_pairs: truth.len() as u64,
        reps: opts.reps as u64,
        strategies,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write(&opts.out, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    eprintln!("wrote {}", opts.out);
}
