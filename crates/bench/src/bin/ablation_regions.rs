//! Ablation: region scheme (equal-width vs k-means) and region count.
//!
//! §IV-A motivates k-means regions over equal-width intervals ("the
//! similarity values do not have a uniform distribution … choosing the
//! regions as equal size intervals is not the best option"). This sweep
//! quantifies that choice and the sensitivity to the number of regions.

use weber_bench::{metric_cells, paper_protocol, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::decision::DecisionCriterion;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_ml::regions::RegionScheme;
use weber_simfun::functions::subset_i10;

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_regions",
        DEFAULT_SEED,
        "region scheme and count sweep, www05-like, all ten functions, best-graph selection",
    );
    println!("Ablation — region scheme and region count (WWW'05-like dataset)");
    println!("single criterion per run, all ten functions, best-graph selection");
    println!();
    let prepared = prepared_www05(DEFAULT_SEED);
    let protocol = paper_protocol();
    let mut rows = Vec::new();
    // Threshold baseline.
    let base = run_experiment(
        &prepared,
        &ResolverConfig {
            criteria: vec![DecisionCriterion::Threshold],
            ..ResolverConfig::accuracy_suite(subset_i10())
        },
        &protocol,
    )
    .expect("valid configuration");
    let mut row = vec!["threshold".to_string(), "-".to_string()];
    row.extend(metric_cells(&base.mean));
    rows.push(row);

    for k in [2usize, 5, 10, 20, 50] {
        for (label, scheme) in [
            ("equal-width", RegionScheme::EqualWidth { k }),
            ("k-means", RegionScheme::kmeans(k)),
        ] {
            let cfg = ResolverConfig {
                criteria: vec![DecisionCriterion::RegionAccuracy(scheme)],
                ..ResolverConfig::accuracy_suite(subset_i10())
            };
            let out = run_experiment(&prepared, &cfg, &protocol).expect("valid configuration");
            let mut row = vec![label.to_string(), k.to_string()];
            row.extend(metric_cells(&out.mean));
            rows.push(row);
        }
    }
    print_table(
        &["scheme", "k", "Fp-measure", "F-measure", "RandIndex"],
        &rows,
    );
}
