//! Ablation: near-duplicate (mirror) detection as an extra evidence layer.
//!
//! Both presets syndicate some pages as mirrors on generic hosts. The
//! shipped extension function F11 (MinHash shingle Jaccard) detects them
//! with high precision; this sweep measures what that layer adds to the
//! combined suite on both corpora.

use std::sync::Arc;

use weber_bench::{
    metric_cells, paper_protocol, prepared_weps, prepared_www05, print_table, DEFAULT_SEED,
};
use weber_core::blocking::PreparedDataset;
use weber_core::decision::DecisionCriterion;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_simfun::functions::{subset_i10, NearDuplicateSimilarity};

fn sweep(label: &str, prepared: &PreparedDataset) {
    println!("{label}");
    let protocol = paper_protocol();
    let f11_only = ResolverConfig {
        functions: vec![Arc::new(NearDuplicateSimilarity)],
        criteria: vec![DecisionCriterion::Threshold],
        ..ResolverConfig::threshold_suite(vec![])
    };
    let configs: Vec<(&str, ResolverConfig)> = vec![
        ("F11 alone (mirror detector)", f11_only),
        ("C10", ResolverConfig::accuracy_suite(subset_i10())),
        (
            "C10 + F11",
            ResolverConfig::accuracy_suite(subset_i10())
                .with_function(Arc::new(NearDuplicateSimilarity)),
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in configs {
        let out = run_experiment(prepared, &cfg, &protocol).expect("valid configuration");
        let mut row = vec![name.to_string()];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    print_table(
        &["configuration", "Fp-measure", "F-measure", "RandIndex"],
        &rows,
    );
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_mirrors",
        DEFAULT_SEED,
        "near-duplicate layer F11, both datasets, 5 runs averaged",
    );
    println!("Ablation — near-duplicate layer F11 (5 runs averaged)");
    println!();
    sweep("WWW'05-like dataset", &prepared_www05(DEFAULT_SEED));
    sweep("WePS-like dataset", &prepared_weps(DEFAULT_SEED));
}
