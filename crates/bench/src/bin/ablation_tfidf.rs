//! Ablation: word-vector weighting scheme for F8–F10.
//!
//! The paper says "TF-IDF (based weights) words vector" without pinning the
//! exact scheme (Lucene's default at the time was sublinear tf × smooth
//! idf). This sweep measures the individual TF-IDF functions and the full
//! C10 combination under the standard variants and BM25.

use weber_bench::{metric_cells, paper_protocol, print_table, DEFAULT_SEED};
use weber_core::blocking::prepare_dataset_with;
use weber_core::decision::DecisionCriterion;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_corpus::{generate, presets};
use weber_simfun::block::WordVectorScheme;
use weber_simfun::functions::{subset_i10, FunctionId};
use weber_textindex::tfidf::{IdfScheme, TfIdf, TfScheme};

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_tfidf",
        DEFAULT_SEED,
        "word-vector weighting for F8-F10, www05-like, 5 runs averaged",
    );
    println!("Ablation — word-vector weighting for F8-F10 (WWW'05-like, 5 runs averaged)");
    println!();
    let dataset = generate(&presets::www05_like(DEFAULT_SEED));
    let protocol = paper_protocol();
    let schemes: Vec<(&str, WordVectorScheme)> = vec![
        (
            "log-tf x smooth-idf",
            WordVectorScheme::TfIdf(TfIdf::new(TfScheme::Log, IdfScheme::Smooth)),
        ),
        (
            "raw-tf x plain-idf",
            WordVectorScheme::TfIdf(TfIdf::new(TfScheme::Raw, IdfScheme::Plain)),
        ),
        (
            "binary x smooth-idf",
            WordVectorScheme::TfIdf(TfIdf::new(TfScheme::Binary, IdfScheme::Smooth)),
        ),
        (
            "maxnorm x prob-idf",
            WordVectorScheme::TfIdf(TfIdf::new(
                TfScheme::MaxNormalized,
                IdfScheme::Probabilistic,
            )),
        ),
        ("bm25 (k1=1.2 b=0.75)", WordVectorScheme::bm25()),
    ];
    let mut rows = Vec::new();
    for (name, scheme) in schemes {
        let prepared = prepare_dataset_with(&dataset, scheme);
        let f8 = run_experiment(
            &prepared,
            &ResolverConfig::individual(FunctionId::F8, DecisionCriterion::Threshold),
            &protocol,
        )
        .expect("valid configuration")
        .mean;
        let combined = run_experiment(
            &prepared,
            &ResolverConfig::accuracy_suite(subset_i10()),
            &protocol,
        )
        .expect("valid configuration")
        .mean;
        let mut row = vec![name.to_string(), weber_bench::fmt(f8.fp)];
        row.extend(metric_cells(&combined));
        rows.push(row);
    }
    print_table(&["scheme", "F8 Fp", "C10 Fp", "C10 F", "C10 Rand"], &rows);
}
