//! Ablation: flat vs structured name similarity for the name functions.
//!
//! Web pages mix "William Cohen", "W. Cohen" and bare "Cohen"; flat string
//! similarity under-rates these variants. This sweep compares F3 (flat
//! Jaro–Winkler over the most frequent name) with the shipped extension
//! F3s (token-structured, initial-aware `name_similarity`), individually
//! and inside the combined suite; also reports rotating 10-fold
//! cross-validation as the variance-free protocol.

use std::sync::Arc;

use weber_bench::{metric_cells, paper_protocol, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::decision::DecisionCriterion;
use weber_core::experiment::{run_cross_validation, run_experiment};
use weber_core::resolver::ResolverConfig;
use weber_simfun::functions::{subset_i10, FunctionId, StructuredNameSimilarity};

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_name_sim",
        DEFAULT_SEED,
        "flat F3 vs structured F3s name similarity, www05-like, 5 runs averaged",
    );
    println!("Ablation — flat (F3) vs structured (F3s) name similarity (WWW'05-like)");
    println!();
    let prepared = prepared_www05(DEFAULT_SEED);
    let protocol = paper_protocol();

    let f3s_only = ResolverConfig {
        functions: vec![Arc::new(StructuredNameSimilarity)],
        criteria: vec![DecisionCriterion::Threshold],
        ..ResolverConfig::threshold_suite(vec![])
    };
    let configs: Vec<(&str, ResolverConfig)> = vec![
        (
            "F3 alone (flat)",
            ResolverConfig::individual(FunctionId::F3, DecisionCriterion::Threshold),
        ),
        ("F3s alone (structured)", f3s_only),
        ("C10", ResolverConfig::accuracy_suite(subset_i10())),
        (
            "C10 + F3s",
            ResolverConfig::accuracy_suite(subset_i10())
                .with_function(Arc::new(StructuredNameSimilarity)),
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in &configs {
        let out = run_experiment(&prepared, cfg, &protocol).expect("valid configuration");
        let mut row = vec![name.to_string(), "random 10% x5".to_string()];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    // Rotating 10-fold cross-validation on the combined configs.
    for (name, cfg) in &configs[2..] {
        let out = run_cross_validation(&prepared, cfg, 10, 1).expect("valid configuration");
        let mut row = vec![name.to_string(), "10-fold rotate".to_string()];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    print_table(
        &[
            "configuration",
            "protocol",
            "Fp-measure",
            "F-measure",
            "RandIndex",
        ],
        &rows,
    );
}
