//! Table III: "Fp measure for each name in WWW'05 dataset" — one row per
//! ambiguous name, one column per individual function F1–F10, plus C10
//! (combined, best decision criterion) and W (weighted average).
//!
//! The paper's observation to reproduce: "each function performs
//! differently for different persons" — the best function varies by row.

use weber_bench::{fmt, paper_protocol, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::decision::DecisionCriterion;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_simfun::functions::{subset_i10, FunctionId};

fn main() {
    let _manifest = weber_bench::manifest(
        "table3_per_name",
        DEFAULT_SEED,
        "per-name Fp breakdown, www05-like, 10 percent training, 5 runs averaged",
    );
    let prepared = prepared_www05(DEFAULT_SEED);
    let protocol = paper_protocol();

    // per_name results for each configuration, keyed by column label.
    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for id in FunctionId::ALL {
        let out = run_experiment(
            &prepared,
            &ResolverConfig::individual(id, DecisionCriterion::Threshold),
            &protocol,
        )
        .expect("valid configuration");
        columns.push((
            id.label().to_string(),
            out.per_name.iter().map(|(_, m)| m.fp).collect(),
        ));
    }
    let c10 = run_experiment(
        &prepared,
        &ResolverConfig::accuracy_suite(subset_i10()),
        &protocol,
    )
    .expect("valid configuration");
    columns.push((
        "C10".to_string(),
        c10.per_name.iter().map(|(_, m)| m.fp).collect(),
    ));
    let w = run_experiment(
        &prepared,
        &ResolverConfig::weighted_average(subset_i10()),
        &protocol,
    )
    .expect("valid configuration");
    columns.push((
        "W".to_string(),
        w.per_name.iter().map(|(_, m)| m.fp).collect(),
    ));

    println!("Table III — Fp measure per name (WWW'05-like dataset)");
    println!();
    let names: Vec<&str> = c10.per_name.iter().map(|(n, _)| n.as_str()).collect();
    let header: Vec<&str> = std::iter::once("name")
        .chain(columns.iter().map(|(l, _)| l.as_str()))
        .collect();
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            std::iter::once(name.to_string())
                .chain(columns.iter().map(|(_, vals)| fmt(vals[i])))
                .collect()
        })
        .collect();
    print_table(&header, &rows);

    // Which individual function wins each name?
    println!();
    let mut winners = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let (best_label, best_v) = columns[..10]
            .iter()
            .map(|(l, vals)| (l.as_str(), vals[i]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("ten function columns");
        winners.push(format!("{name}:{best_label}({})", fmt(best_v)));
    }
    println!("best individual function per name: {}", winners.join(" "));
    let distinct: std::collections::HashSet<&str> = names
        .iter()
        .enumerate()
        .map(|(i, _)| {
            columns[..10]
                .iter()
                .max_by(|a, b| a.1[i].total_cmp(&b.1[i]))
                .expect("ten function columns")
                .0
                .as_str()
        })
        .collect();
    println!(
        "distinct winning functions across names: {} (paper's point: no single winner)",
        distinct.len()
    );
}
