//! Figure 2: "WWW results graph" — Fp, F-measure and Rand index of each
//! individual similarity function F1–F10 on the WWW'05-like dataset, plus
//! the combined technique (the black final column of the paper's figure).

use weber_bench::{figure_per_function, prepared_www05, DEFAULT_SEED};

fn main() {
    let _manifest = weber_bench::manifest("fig2_www05", DEFAULT_SEED, "www05-like preset, per-function threshold plus combined C10, 10 percent training, 5 runs averaged");
    let prepared = prepared_www05(DEFAULT_SEED);
    figure_per_function("Figure 2 — WWW'05-like dataset", &prepared);
}
