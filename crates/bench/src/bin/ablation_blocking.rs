//! Ablation: blocking schemes on noisy name keys.
//!
//! The paper's footnote: "Such blocking strategy is very natural in the
//! datasets we used, where the documents already organized around person
//! names. In general, one needs to consider the applicable blocking
//! schemes more carefully."
//!
//! Here the documents of all blocks are thrown into one flat collection
//! keyed by the *extracted* dominant person name (noisy: pages use full
//! names, initial forms or the bare surname), and three schemes compete:
//! exact-key blocking, surname-token blocking (the datasets' natural key),
//! and sorted-neighbourhood over the noisy keys. Reported per scheme: pair
//! recall of true co-referent pairs and candidate-pair cost.

use weber_bench::{fmt, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::blocking::{key_blocks, sorted_neighborhood};

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_blocking",
        DEFAULT_SEED,
        "www05-like, blocking on noisy extracted name keys",
    );
    println!("Ablation — blocking on noisy extracted name keys (WWW'05-like)");
    println!();
    let prepared = prepared_www05(DEFAULT_SEED);

    // Flatten: global doc ids, noisy keys, and the true co-referent pairs.
    let mut keys: Vec<String> = Vec::new();
    let mut surname: Vec<String> = Vec::new();
    let mut truth_pairs: Vec<(usize, usize)> = Vec::new();
    let mut offset = 0usize;
    for nb in &prepared.blocks {
        for d in 0..nb.block.len() {
            let key = nb
                .block
                .features(d)
                .most_frequent_person()
                .unwrap_or(nb.block.query_name())
                .to_lowercase();
            keys.push(key);
            surname.push(nb.block.query_name().to_string());
        }
        for (i, j) in nb.truth.positive_pairs() {
            truth_pairs.push((offset + i, offset + j));
        }
        offset += nb.block.len();
    }
    let n = keys.len();
    println!(
        "{n} documents, {} true co-referent pairs, {} distinct noisy keys",
        truth_pairs.len(),
        keys.iter().collect::<std::collections::BTreeSet<_>>().len()
    );
    println!();

    let recall_and_cost = |candidates: &dyn Fn(usize, usize) -> bool, cost: usize| {
        let covered = truth_pairs
            .iter()
            .filter(|&&(i, j)| candidates(i, j))
            .count();
        (covered as f64 / truth_pairs.len() as f64, cost)
    };

    let mut rows = Vec::new();

    // Exact noisy-key blocking.
    {
        let blocks = key_blocks(&keys, |k| k.clone());
        let mut label = vec![usize::MAX; n];
        let mut cost = 0usize;
        for (b, block) in blocks.iter().enumerate() {
            cost += block.len() * (block.len().saturating_sub(1)) / 2;
            for &d in block {
                label[d] = b;
            }
        }
        let (recall, cost) = recall_and_cost(&|i, j| label[i] == label[j], cost);
        rows.push(vec![
            "exact noisy key".to_string(),
            fmt(recall),
            cost.to_string(),
        ]);
    }

    // Surname blocking (the datasets' natural scheme; the oracle here).
    {
        let blocks = key_blocks(&surname, |k| k.clone());
        let mut label = vec![usize::MAX; n];
        let mut cost = 0usize;
        for (b, block) in blocks.iter().enumerate() {
            cost += block.len() * (block.len().saturating_sub(1)) / 2;
            for &d in block {
                label[d] = b;
            }
        }
        let (recall, cost) = recall_and_cost(&|i, j| label[i] == label[j], cost);
        rows.push(vec![
            "surname key (paper)".to_string(),
            fmt(recall),
            cost.to_string(),
        ]);
    }

    // Sorted neighbourhood over noisy keys, several window sizes. Keys sort
    // by the full noisy string, so "w cohen" and "william cohen" are *not*
    // adjacent unless the window spans the gap — we sort by reversed name
    // (surname first), the classic merge/purge key-design trick.
    for window in [5usize, 10, 25, 50] {
        let reversed = |k: &String| -> String {
            let mut toks: Vec<&str> = k.split(' ').collect();
            toks.reverse();
            toks.join(" ")
        };
        let pairs = sorted_neighborhood(&keys, reversed, window);
        let set: std::collections::HashSet<(usize, usize)> = pairs.iter().copied().collect();
        let (recall, cost) = recall_and_cost(&|i, j| set.contains(&(i, j)), pairs.len());
        rows.push(vec![
            format!("sorted-neighbourhood w={window}"),
            fmt(recall),
            cost.to_string(),
        ]);
    }

    print_table(&["scheme", "pair recall", "candidate pairs"], &rows);
    println!();
    println!(
        "surname blocking is the ceiling (the paper's natural blocks); exact\n\
         noisy keys fracture entities across name variants; sorted\n\
         neighbourhood with a surname-first sort key recovers recall at a\n\
         fraction of the full {} comparisons.",
        n * (n - 1) / 2
    );
}
