//! Ablation: combination strategy × weighting scheme × clustering back-end.
//!
//! Sweeps the design choices of §IV-B/§IV-C: best-graph selection vs
//! weighted averaging (under four layer-weighting schemes) vs majority
//! vote, each clustered by transitive closure and by correlation
//! clustering. Reported on both datasets.

use weber_bench::{
    metric_cells, paper_protocol, prepared_weps, prepared_www05, print_table, DEFAULT_SEED,
};
use weber_core::blocking::PreparedDataset;
use weber_core::clustering::ClusteringMethod;
use weber_core::combine::{CombinationStrategy, WeightScheme};
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_graph::correlation::CorrelationConfig;
use weber_simfun::functions::subset_i10;

fn sweep(label: &str, prepared: &PreparedDataset) {
    println!("{label}");
    let protocol = paper_protocol();
    let combos: Vec<(&str, CombinationStrategy)> = vec![
        ("best-graph", CombinationStrategy::BestGraph),
        (
            "wavg/accuracy",
            CombinationStrategy::WeightedAverage(WeightScheme::Accuracy),
        ),
        (
            "wavg/excess",
            CombinationStrategy::WeightedAverage(WeightScheme::Excess),
        ),
        (
            "wavg/selection",
            CombinationStrategy::WeightedAverage(WeightScheme::SelectionScore),
        ),
        (
            "wavg/uniform",
            CombinationStrategy::WeightedAverage(WeightScheme::Uniform),
        ),
        ("majority-vote", CombinationStrategy::MajorityVote),
    ];
    let clusterings: Vec<(&str, ClusteringMethod)> = vec![
        ("closure", ClusteringMethod::TransitiveClosure),
        (
            "correlation",
            ClusteringMethod::Correlation(CorrelationConfig::default()),
        ),
    ];
    let mut rows = Vec::new();
    for (combo_label, combination) in &combos {
        for (cluster_label, clustering) in &clusterings {
            let cfg = ResolverConfig {
                combination: *combination,
                clustering: *clustering,
                ..ResolverConfig::accuracy_suite(subset_i10())
            };
            let out = run_experiment(prepared, &cfg, &protocol).expect("valid configuration");
            let mut row = vec![combo_label.to_string(), cluster_label.to_string()];
            row.extend(metric_cells(&out.mean));
            rows.push(row);
        }
    }
    print_table(
        &[
            "combination",
            "clustering",
            "Fp-measure",
            "F-measure",
            "RandIndex",
        ],
        &rows,
    );
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_combination",
        DEFAULT_SEED,
        "combination x weighting x clustering sweep, both datasets, 5 runs averaged",
    );
    println!("Ablation — combination strategy x weighting x clustering");
    println!();
    sweep("WWW'05-like dataset", &prepared_www05(DEFAULT_SEED));
    sweep("WePS-like dataset", &prepared_weps(DEFAULT_SEED));
}
