//! Ablation: value-based vs input-based regions.
//!
//! §IV-A: "One can define such regions based on some properties of the
//! input (i.e. pair of entities) or based on the reported function value.
//! We discuss here our experiments, where we defined the regions based on
//! the similarity value." This sweep explores the road not taken:
//! partitioning pairs by *feature presence* (both pages carry the
//! function's feature vs not) with a separate threshold per cell, alone
//! and combined with the value-based criteria.

use weber_bench::{
    metric_cells, paper_protocol, prepared_weps, prepared_www05, print_table, DEFAULT_SEED,
};
use weber_core::blocking::PreparedDataset;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_simfun::functions::subset_i10;

fn sweep(label: &str, prepared: &PreparedDataset) {
    println!("{label}");
    let protocol = paper_protocol();
    let configs: Vec<(&str, ResolverConfig)> = vec![
        (
            "threshold only (I10)",
            ResolverConfig::threshold_suite(subset_i10()),
        ),
        (
            "value regions (C10)",
            ResolverConfig::accuracy_suite(subset_i10()),
        ),
        (
            "input cells only",
            ResolverConfig::threshold_suite(subset_i10()).with_input_partitioning(),
        ),
        (
            "value + input (C10+)",
            ResolverConfig::accuracy_suite(subset_i10()).with_input_partitioning(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in configs {
        let out = run_experiment(prepared, &cfg, &protocol).expect("valid configuration");
        let mut row = vec![name.to_string()];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    print_table(&["criteria", "Fp-measure", "F-measure", "RandIndex"], &rows);
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_input_regions",
        DEFAULT_SEED,
        "value-based vs input-based regions, both datasets, 5 runs averaged",
    );
    println!("Ablation — value-based vs input-based regions (5 runs averaged)");
    println!();
    sweep("WWW'05-like dataset", &prepared_www05(DEFAULT_SEED));
    sweep("WePS-like dataset", &prepared_weps(DEFAULT_SEED));
}
