//! Figure 3: "WEPS results graph" — Fp, F-measure and Rand index of each
//! individual similarity function F1–F10 on the WePS-like dataset, plus the
//! combined technique.

use weber_bench::{figure_per_function, prepared_weps, DEFAULT_SEED};

fn main() {
    let prepared = prepared_weps(DEFAULT_SEED);
    figure_per_function("Figure 3 — WePS-like dataset", &prepared);
}
