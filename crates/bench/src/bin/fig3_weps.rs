//! Figure 3: "WEPS results graph" — Fp, F-measure and Rand index of each
//! individual similarity function F1–F10 on the WePS-like dataset, plus the
//! combined technique.

use weber_bench::{figure_per_function, prepared_weps, DEFAULT_SEED};

fn main() {
    let _manifest = weber_bench::manifest("fig3_weps", DEFAULT_SEED, "weps-like preset, per-function threshold plus combined C10, 10 percent training, 5 runs averaged");
    let prepared = prepared_weps(DEFAULT_SEED);
    figure_per_function("Figure 3 — WePS-like dataset", &prepared);
}
