//! Ablation: clustering back-end.
//!
//! §IV-C: the paper's default is transitive closure, with correlation
//! clustering as the experimented alternative; §VI contrasts with
//! incremental clustering-based methods. This sweep compares all three
//! (incremental under three linkages) under the full C10 configuration.

use weber_bench::{
    metric_cells, paper_protocol, prepared_weps, prepared_www05, print_table, DEFAULT_SEED,
};
use weber_core::blocking::PreparedDataset;
use weber_core::clustering::ClusteringMethod;
use weber_core::experiment::run_experiment;
use weber_core::resolver::ResolverConfig;
use weber_graph::correlation::CorrelationConfig;
use weber_graph::incremental::Linkage;
use weber_simfun::functions::subset_i10;

fn sweep(label: &str, prepared: &PreparedDataset) {
    println!("{label}");
    let protocol = paper_protocol();
    let methods: Vec<(&str, ClusteringMethod)> = vec![
        ("transitive closure", ClusteringMethod::TransitiveClosure),
        (
            "correlation",
            ClusteringMethod::Correlation(CorrelationConfig::default()),
        ),
        (
            "incremental/single",
            ClusteringMethod::Incremental(Linkage::Single),
        ),
        (
            "incremental/average",
            ClusteringMethod::Incremental(Linkage::Average),
        ),
        (
            "incremental/complete",
            ClusteringMethod::Incremental(Linkage::Complete),
        ),
    ];
    let mut rows = Vec::new();
    for (name, clustering) in methods {
        let cfg = ResolverConfig {
            clustering,
            ..ResolverConfig::accuracy_suite(subset_i10())
        };
        let out = run_experiment(prepared, &cfg, &protocol).expect("valid configuration");
        let mut row = vec![name.to_string()];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    print_table(
        &["clustering", "Fp-measure", "F-measure", "RandIndex"],
        &rows,
    );
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_clustering",
        DEFAULT_SEED,
        "clustering back-end sweep, C10 configuration, both datasets, 5 runs averaged",
    );
    println!("Ablation — clustering back-end (C10 configuration, 5 runs averaged)");
    println!();
    sweep("WWW'05-like dataset", &prepared_www05(DEFAULT_SEED));
    sweep("WePS-like dataset", &prepared_weps(DEFAULT_SEED));
}
