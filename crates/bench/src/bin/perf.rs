//! Machine-readable performance harness for the perf trajectory across PRs.
//!
//! Two wall-clock scenarios, each emitted as a JSON report:
//!
//! - **stream**: seed a [`StreamResolver`] with one generated block's
//!   labelled documents, then ingest cycled copies one at a time until the
//!   block holds `--docs` documents (checkpoint retraining included). This
//!   is the end-to-end ingest path `weber serve` runs per request.
//! - **pipeline**: batch-resolve one prepared block of `--pipeline-docs`
//!   documents under the default configuration (all ten functions, three
//!   criteria, best-graph selection).
//!
//! Reports carry documents-per-second / pairs-per-second so runs are
//! comparable across machines only in ratio form; pass `--stream-baseline`
//! / `--pipeline-baseline` pointing at an earlier report to get a
//! `speedup` field computed against it. `scripts/bench.sh` wires this up.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use weber_core::resolver::{Resolver, ResolverConfig};
use weber_core::supervision::Supervision;
use weber_corpus::{generate, presets};
use weber_extract::features::PageFeatures;
use weber_extract::pipeline::Extractor;
use weber_simfun::block::{PreparedBlock, WordVectorScheme};
use weber_stream::{SeedDocument, StreamConfig, StreamResolver};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StreamReport {
    scenario: String,
    total_docs: u64,
    seed_docs: u64,
    ingested_docs: u64,
    reps: u64,
    /// Best wall time over the reps, seconds (seed + every ingest).
    wall_seconds: f64,
    /// `total_docs / wall_seconds`.
    docs_per_second: f64,
    baseline_wall_seconds: Option<f64>,
    baseline_docs_per_second: Option<f64>,
    /// `baseline_wall_seconds / wall_seconds` (higher is better).
    speedup: Option<f64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PipelineReport {
    scenario: String,
    block_docs: u64,
    functions: u64,
    /// Pairwise similarity evaluations one resolve implies:
    /// `functions × n·(n−1)/2`.
    pairs_scored: u64,
    reps: u64,
    /// Best wall time over the reps, seconds (resolve only; block
    /// preparation excluded).
    wall_seconds: f64,
    /// `pairs_scored / wall_seconds`.
    pairs_per_second: f64,
    baseline_wall_seconds: Option<f64>,
    baseline_pairs_per_second: Option<f64>,
    speedup: Option<f64>,
}

struct Options {
    docs: usize,
    pipeline_docs: usize,
    reps: usize,
    stream_out: String,
    pipeline_out: String,
    stream_baseline: Option<String>,
    pipeline_baseline: Option<String>,
    bench_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            docs: 200,
            pipeline_docs: 120,
            reps: 3,
            stream_out: "BENCH_stream.json".into(),
            pipeline_out: "BENCH_pipeline.json".into(),
            stream_baseline: None,
            pipeline_baseline: None,
            bench_out: None,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--docs" => opts.docs = value("--docs").parse().expect("--docs: integer"),
            "--pipeline-docs" => {
                opts.pipeline_docs = value("--pipeline-docs")
                    .parse()
                    .expect("--pipeline-docs: integer");
            }
            "--reps" => opts.reps = value("--reps").parse::<usize>().expect("--reps").max(1),
            "--stream-out" => opts.stream_out = value("--stream-out"),
            "--pipeline-out" => opts.pipeline_out = value("--pipeline-out"),
            "--stream-baseline" => opts.stream_baseline = Some(value("--stream-baseline")),
            "--pipeline-baseline" => opts.pipeline_baseline = Some(value("--pipeline-baseline")),
            "--bench-out" => opts.bench_out = Some(value("--bench-out")),
            "--smoke" => {
                opts.docs = 40;
                opts.pipeline_docs = 40;
                opts.reps = 1;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if let Some(dir) = &opts.bench_out {
        opts.stream_out = weber_bench::redirect_into(dir, &opts.stream_out);
        opts.pipeline_out = weber_bench::redirect_into(dir, &opts.pipeline_out);
    }
    opts
}

/// One timed streaming run: seed with the source block's labelled
/// documents, ingest cycled copies until `total` documents are held.
fn run_stream(total: usize) -> (f64, usize) {
    let dataset = generate(&presets::tiny(3));
    let source = &dataset.blocks[0];
    let truth = source.truth();
    let seed_docs: Vec<SeedDocument> = source
        .documents
        .iter()
        .zip(0..)
        .map(|(d, i)| SeedDocument {
            text: d.text.clone(),
            url: d.url.clone(),
            label: truth.label_of(i),
        })
        .collect();
    assert!(
        total > seed_docs.len(),
        "--docs must exceed the seed batch ({})",
        seed_docs.len()
    );
    let arrivals: Vec<(String, Option<String>)> = (seed_docs.len()..total)
        .map(|i| {
            let d = &source.documents[i % source.documents.len()];
            (d.text.clone(), d.url.clone())
        })
        .collect();
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let start = Instant::now();
    stream.seed(&source.query_name, &seed_docs).unwrap();
    for (text, url) in &arrivals {
        stream
            .ingest(&source.query_name, text, url.as_deref())
            .unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(stream.partition(&source.query_name).unwrap());
    (secs, seed_docs.len())
}

/// One timed batch resolve over a freshly prepared `n`-document block
/// (preparation excluded from the timing).
fn run_pipeline(n: usize) -> (f64, usize) {
    let dataset = generate(&presets::tiny(3));
    let extractor = Extractor::new(&dataset.gazetteer);
    let source = &dataset.blocks[0];
    let features: Vec<PageFeatures> = (0..n)
        .map(|i| {
            let d = &source.documents[i % source.documents.len()];
            extractor.extract(&d.text, d.url.as_deref())
        })
        .collect();
    let block = PreparedBlock::with_scheme(
        source.query_name.clone(),
        features,
        WordVectorScheme::default(),
    );
    let truth = source.truth();
    let labelled = source.documents.len().min(n);
    let sup = Supervision::new((0..labelled).map(|i| (i, truth.label_of(i))).collect());
    let config = ResolverConfig::default();
    let functions = config.functions.len();
    let resolver = Resolver::new(config).unwrap();
    let start = Instant::now();
    let resolution = resolver.resolve(&block, &sup).unwrap();
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(resolution.partition.len());
    (secs, functions)
}

fn best_of(reps: usize, run: impl Fn() -> f64) -> f64 {
    (0..reps).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn load<T: Deserialize>(path: &str) -> T {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    serde_json::from_str(&json).unwrap_or_else(|e| panic!("cannot parse baseline {path}: {e:?}"))
}

fn write(path: &str, json: String) {
    std::fs::write(path, json + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("wrote {path}");
}

fn main() {
    let opts = parse_args();

    let (_, seed_len) = run_stream(opts.docs.max(30)); // warm-up + seed size probe
    let wall = best_of(opts.reps, || run_stream(opts.docs).0);
    let mut stream = StreamReport {
        scenario: "stream_ingest".into(),
        total_docs: opts.docs as u64,
        seed_docs: seed_len as u64,
        ingested_docs: (opts.docs - seed_len) as u64,
        reps: opts.reps as u64,
        wall_seconds: wall,
        docs_per_second: opts.docs as f64 / wall,
        baseline_wall_seconds: None,
        baseline_docs_per_second: None,
        speedup: None,
    };
    if let Some(path) = &opts.stream_baseline {
        let base: StreamReport = load(path);
        stream.baseline_wall_seconds = Some(base.wall_seconds);
        stream.baseline_docs_per_second = Some(base.docs_per_second);
        stream.speedup = Some(base.wall_seconds / stream.wall_seconds);
    }
    eprintln!(
        "stream: {} docs in {:.3}s ({:.1} docs/s{})",
        stream.total_docs,
        stream.wall_seconds,
        stream.docs_per_second,
        stream
            .speedup
            .map(|s| format!(", {s:.2}x vs baseline"))
            .unwrap_or_default()
    );
    write(
        &opts.stream_out,
        serde_json::to_string_pretty(&stream).unwrap(),
    );

    let (_, functions) = run_pipeline(opts.pipeline_docs.min(40)); // warm-up
    let wall = best_of(opts.reps, || run_pipeline(opts.pipeline_docs).0);
    let n = opts.pipeline_docs as u64;
    let pairs = functions as u64 * n * (n - 1) / 2;
    let mut pipeline = PipelineReport {
        scenario: "pipeline_resolve".into(),
        block_docs: n,
        functions: functions as u64,
        pairs_scored: pairs,
        reps: opts.reps as u64,
        wall_seconds: wall,
        pairs_per_second: pairs as f64 / wall,
        baseline_wall_seconds: None,
        baseline_pairs_per_second: None,
        speedup: None,
    };
    if let Some(path) = &opts.pipeline_baseline {
        let base: PipelineReport = load(path);
        pipeline.baseline_wall_seconds = Some(base.wall_seconds);
        pipeline.baseline_pairs_per_second = Some(base.pairs_per_second);
        pipeline.speedup = Some(base.wall_seconds / pipeline.wall_seconds);
    }
    eprintln!(
        "pipeline: {} docs ({} pairs) in {:.3}s ({:.0} pairs/s{})",
        pipeline.block_docs,
        pipeline.pairs_scored,
        pipeline.wall_seconds,
        pipeline.pairs_per_second,
        pipeline
            .speedup
            .map(|s| format!(", {s:.2}x vs baseline"))
            .unwrap_or_default()
    );
    write(
        &opts.pipeline_out,
        serde_json::to_string_pretty(&pipeline).unwrap(),
    );
}
