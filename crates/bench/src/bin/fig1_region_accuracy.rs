//! Figure 1: "Accuracy of a similarity function" — per-region accuracy of
//! link existence for k-means-generated regions, for the most-frequent-name
//! function F3 on the "cohen" block of the WWW'05-like dataset.
//!
//! Prints one row per region: its representative (cluster head), its
//! boundaries, training support, and the estimated accuracy of link
//! existence — the series plotted in the paper's Figure 1.

use weber_bench::{fmt, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::supervision::Supervision;
use weber_ml::accuracy::AccuracyModel;
use weber_ml::regions::RegionScheme;
use weber_simfun::functions::{function, FunctionId};

fn main() {
    let _manifest = weber_bench::manifest(
        "fig1_region_accuracy",
        DEFAULT_SEED,
        "F3 on the cohen block, 10 percent training, region accuracy estimates",
    );
    let prepared = prepared_www05(DEFAULT_SEED);
    let target = prepared
        .blocks
        .iter()
        .find(|b| b.block.query_name() == "cohen")
        .expect("the www05-like preset contains a 'cohen' block");

    let sims =
        weber_core::layers::similarity_graph(&target.block, function(FunctionId::F3).as_ref());
    let supervision = Supervision::sample_from_truth(&target.truth, 0.1, 1);
    let samples = supervision.labeled_values(|i, j| sims.get(i, j));
    let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
    let regions = RegionScheme::kmeans(10).fit(&values);
    let model = AccuracyModel::fit(regions, &samples);

    println!("Figure 1 — accuracy of link existence per k-means region");
    println!(
        "function F3 (most frequent name), name 'cohen', {} documents, {} training pairs",
        target.block.len(),
        samples.len()
    );
    println!();
    let rows: Vec<Vec<String>> = (0..model.regions().len())
        .map(|r| {
            let (lo, hi) = model.regions().bounds(r);
            vec![
                format!("{r}"),
                fmt(model.regions().representatives()[r]),
                format!("[{}, {})", fmt(lo), fmt(hi)),
                format!("{}", model.support()[r]),
                fmt(model.link_rates()[r]),
            ]
        })
        .collect();
    print_table(
        &["region", "center", "bounds", "support", "accuracy"],
        &rows,
    );
    println!();
    println!(
        "training accuracy of the region decisions: {}",
        fmt(model.training_accuracy(&samples))
    );
    println!(
        "(the variation across regions is the paper's point: a single\n\
         threshold wastes the regions where the function is reliable)"
    );
}
