//! Diagnostic: which evidence layer does best-graph selection pick per
//! block, what did it estimate, and what quality did the resolution really
//! achieve? Useful when the combined technique behaves unexpectedly.

use weber_bench::{fmt, prepared_weps, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::resolver::{Resolver, ResolverConfig};
use weber_core::supervision::Supervision;
use weber_eval::MetricSet;
use weber_simfun::functions::subset_i10;

fn inspect(label: &str, prepared: &weber_core::blocking::PreparedDataset) {
    println!("{label}");
    let resolver = Resolver::new(ResolverConfig::accuracy_suite(subset_i10())).unwrap();
    let mut rows = Vec::new();
    for nb in &prepared.blocks {
        let sup = Supervision::sample_from_truth(&nb.truth, 0.1, 1);
        let r = resolver.resolve(&nb.block, &sup).unwrap();
        let sel = r.selected().expect("best-graph selects");
        let m = MetricSet::evaluate(&r.partition, &nb.truth);
        rows.push(vec![
            nb.block.query_name().to_string(),
            format!("{}", nb.truth.cluster_count()),
            format!("{}/{}", sel.function, sel.criterion),
            fmt(sel.selection_score),
            fmt(sel.accuracy),
            format!("{}", sel.edges),
            fmt(m.fp),
        ]);
    }
    print_table(
        &[
            "name", "entities", "selected", "est.Fp", "pair.acc", "edges", "true Fp",
        ],
        &rows,
    );
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "inspect_selection",
        DEFAULT_SEED,
        "best-graph selection inspection, both datasets",
    );
    inspect("WWW'05-like", &prepared_www05(DEFAULT_SEED));
    inspect("WePS-like", &prepared_weps(DEFAULT_SEED));
}
