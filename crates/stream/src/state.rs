//! Per-name streaming state: the grown block, the trained decision model,
//! and the live partition.

use std::collections::HashMap;

use weber_core::resolver::Resolver;
use weber_core::supervision::Supervision;
use weber_core::TrainedModel;
use weber_extract::features::PageFeatures;
use weber_graph::{OnlinePartition, Partition};
use weber_simfun::block::{PreparedBlock, WordVectorScheme};

use crate::config::AssignmentPolicy;
use crate::error::StreamError;
use crate::snapshot::StoredDocument;

/// Where an arriving document landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAssignment {
    /// Index of the document within its name's block.
    pub doc: usize,
    /// Cluster representative (the smallest-rooted member index; stable
    /// until a later arrival merges the cluster).
    pub cluster: usize,
    /// True when the document founded a new singleton cluster.
    pub is_new_cluster: bool,
    /// Size of the cluster after assignment.
    pub cluster_size: usize,
    /// How many existing members the document linked to.
    pub linked_members: usize,
    /// True when this arrival hit the doubling schedule and triggered a
    /// full checkpoint retrain before being placed.
    pub retrained: bool,
}

/// All streaming state for one ambiguous name.
///
/// Seeded once from a labelled batch (which trains the decision model via
/// best-graph selection), then grown one document at a time: each arrival
/// joins the block-local index, is scored against every existing member
/// with the trained model, and is folded into the live partition under the
/// configured [`AssignmentPolicy`].
#[derive(Debug)]
pub struct NameState {
    block: PreparedBlock,
    model: TrainedModel,
    partition: OnlinePartition,
    assignment: AssignmentPolicy,
    /// The seed labels, retained so the model can be re-calibrated as the
    /// block's document frequencies drift away from the seed statistics.
    supervision: Supervision,
    /// The batch resolver, retained for checkpoint re-training.
    resolver: Resolver,
    /// Block size at which the next checkpoint rebuild runs.
    retrain_at: usize,
    /// The raw documents, in block order (seed batch first). Retained as
    /// the durable form of the state: feature vectors reference term ids
    /// interned in a process-global vocabulary, so persistence stores the
    /// documents and restore replays them through extraction.
    documents: Vec<StoredDocument>,
    /// The seed batch's entity labels (documents `0..seed_labels.len()`).
    seed_labels: Vec<u32>,
    /// Word-vector generation of the block at the last (re)fit of the
    /// model. Per-arrival re-calibration only matters when the similarity
    /// values on the seed pairs can have moved, i.e. when the selected
    /// function reads the word-vector space *and* the vectors actually
    /// changed; feature-based functions are immutable per document, so
    /// their refit is a fixed point and is skipped.
    last_refit_generation: u64,
}

/// Transitive closure of the model's pairwise decisions over the whole
/// block, with the supervision's known same-entity pairs merged on top
/// (seed labels are ground truth for their documents).
///
/// Reads the pairwise values from the model's similarity graph — which the
/// block serves from its incremental cache, so a closure rebuild right
/// after training reuses the graph the evidence layers already built.
fn closure_partition(
    block: &PreparedBlock,
    model: &TrainedModel,
    supervision: &Supervision,
) -> OnlinePartition {
    let sims = model.similarity_graph(block);
    let mut partition = OnlinePartition::new();
    for i in 0..block.len() {
        let links: Vec<usize> = (0..i)
            .filter(|&j| model.decide_value(block, i, j, sims.get(j, i)))
            .collect();
        partition.insert(links);
    }
    for (i, j, link) in supervision.pairs() {
        if link {
            partition.merge(i, j);
        }
    }
    partition
}

impl NameState {
    /// Train on a labelled seed batch and build the initial partition.
    ///
    /// The partition over the seed documents is the transitive closure of
    /// the trained model's pairwise decisions, with same-label pairs merged
    /// on top (the seed labels are ground truth for their documents).
    pub fn seed(
        name: &str,
        documents: Vec<StoredDocument>,
        features: Vec<PageFeatures>,
        labels: &[u32],
        resolver: &Resolver,
        scheme: WordVectorScheme,
        assignment: AssignmentPolicy,
    ) -> Result<Self, StreamError> {
        Self::seed_observed(
            name, documents, features, labels, resolver, scheme, assignment, None,
        )
    }

    /// [`seed`](Self::seed) with optional shared similarity-cache counters
    /// attached to the block *before* training, so the seed's own layer
    /// builds are already accounted. The streaming resolver passes one
    /// instance shared across all its names.
    #[allow(clippy::too_many_arguments)]
    pub fn seed_observed(
        name: &str,
        documents: Vec<StoredDocument>,
        features: Vec<PageFeatures>,
        labels: &[u32],
        resolver: &Resolver,
        scheme: WordVectorScheme,
        assignment: AssignmentPolicy,
        cache_stats: Option<std::sync::Arc<weber_simfun::block::CacheStats>>,
    ) -> Result<Self, StreamError> {
        if features.is_empty() {
            return Err(StreamError::EmptySeed(name.to_string()));
        }
        // A mismatched batch must fail loudly in every build: proceeding
        // would mistrain (labels attached to the wrong documents) or panic
        // later inside supervision pair enumeration.
        if features.len() != labels.len() || documents.len() != features.len() {
            return Err(StreamError::SeedMismatch {
                name: name.to_string(),
                docs: documents.len().max(features.len()),
                labels: labels.len(),
            });
        }
        let mut block = PreparedBlock::with_scheme(name, features, scheme);
        if let Some(stats) = cache_stats {
            block.set_cache_stats(stats);
        }
        let supervision = Supervision::new(
            labels
                .iter()
                .enumerate()
                .map(|(i, &l)| (i, l))
                .collect::<HashMap<_, _>>(),
        );
        let model = resolver.train(&block, &supervision)?;
        let partition = closure_partition(&block, &model, &supervision);
        let retrain_at = block.len() * 2;
        let seed_labels = labels.to_vec();
        let last_refit_generation = block.vector_generation();
        Ok(Self {
            block,
            model,
            partition,
            assignment,
            supervision,
            resolver: resolver.clone(),
            retrain_at,
            documents,
            seed_labels,
            last_refit_generation,
        })
    }

    /// Checkpoint: re-run full best-graph training on the grown block and
    /// rebuild the partition from the new model's decision closure.
    ///
    /// The seed model was selected on seed-only statistics, where a
    /// threshold layer can look perfect (a handful of labelled documents is
    /// easy to separate) yet over-link badly on the unlabelled stream. The
    /// batch resolver never has this problem because its layers are built
    /// over *all* documents — unlabelled ones participate in the closure, so
    /// over-linking layers get punished at selection time. Re-training at
    /// doubling block sizes restores that selection pressure: total rebuild
    /// cost is a geometric series dominated by the final rebuild, i.e. the
    /// same order as one batch resolution.
    fn checkpoint(&mut self) {
        if let Ok(model) = self.resolver.train(&self.block, &self.supervision) {
            self.model = model;
        } else {
            // Training can only fail on invalid supervision, which seed()
            // already validated; fall back to re-calibration just in case.
            self.model.refit(&self.block, &self.supervision);
        }
        self.partition = closure_partition(&self.block, &self.model, &self.supervision);
        self.retrain_at = self.block.len() * 2;
        self.last_refit_generation = self.block.vector_generation();
    }

    /// Ingest one document: grow the block, re-calibrate the model's fit
    /// on the retained seed labels (document frequencies just shifted),
    /// score against every existing member, update the partition.
    ///
    /// Under [`AssignmentPolicy::TransitiveClosure`] the state additionally
    /// re-trains and rebuilds at doubling block sizes (see
    /// [`NameState::checkpoint`]); the per-arrival path below handles every
    /// document in between. The [`AssignmentPolicy::Linkage`] policy is
    /// strictly incremental — it promises never to merge existing clusters,
    /// which a closure rebuild could not honour.
    pub fn ingest(
        &mut self,
        document: StoredDocument,
        features: PageFeatures,
    ) -> ClusterAssignment {
        self.documents.push(document);
        // Defer the word-vector refresh: the push only re-weights vectors
        // when the selected function actually reads them (or a checkpoint
        // is about to re-train over every function). Feature-based models
        // never touch the vector space, so their arrivals skip the O(block)
        // TF-IDF rebuild entirely.
        let doc = self.block.push_deferred(features);
        let checkpoint_due = matches!(self.assignment, AssignmentPolicy::TransitiveClosure)
            && self.block.len() >= self.retrain_at;
        if checkpoint_due || self.model.uses_word_vectors() {
            self.block.ensure_vectors();
        }
        if checkpoint_due {
            self.checkpoint();
            let row = self.model.similarity_row(&self.block, doc);
            let linked_members = (0..doc)
                .filter(|&j| self.model.decide_value(&self.block, doc, j, row[j]))
                .count();
            let cluster_size = self.partition.members_of(doc).len();
            return ClusterAssignment {
                doc,
                cluster: self.partition.representative(doc),
                is_new_cluster: cluster_size == 1,
                cluster_size,
                linked_members,
                retrained: true,
            };
        }
        // Re-calibrate only when the seed-pair similarity values can have
        // moved: a push shifts block-local document frequencies, but that
        // reaches the model only through the word-vector space. For
        // feature-based functions the refit is a fixed point; for
        // word-vector functions the store's generation says whether any
        // already-built vector actually changed.
        if self.model.uses_word_vectors()
            && self.block.vector_generation() != self.last_refit_generation
        {
            self.model.refit(&self.block, &self.supervision);
            self.last_refit_generation = self.block.vector_generation();
        }
        let row = self.model.similarity_row(&self.block, doc);
        let links: Vec<usize> = match self.assignment {
            AssignmentPolicy::TransitiveClosure => (0..doc)
                .filter(|&j| self.model.decide_value(&self.block, doc, j, row[j]))
                .collect(),
            AssignmentPolicy::Linkage { linkage, threshold } => {
                let mut best: Option<(usize, f64)> = None;
                for members in self.partition.clusters() {
                    let score = linkage.combine_scores(members.iter().map(|&m| {
                        self.model
                            .link_probability_value(&self.block, doc, m, row[m])
                    }));
                    if score >= threshold && best.is_none_or(|(_, b)| score > b) {
                        best = Some((members[0], score));
                    }
                }
                best.map(|(m, _)| vec![m]).unwrap_or_default()
            }
        };
        let linked_members = links.len();
        let id = self.partition.insert(links);
        debug_assert_eq!(id, doc);
        let cluster_size = self.partition.members_of(doc).len();
        ClusterAssignment {
            doc,
            cluster: self.partition.representative(doc),
            is_new_cluster: cluster_size == 1,
            cluster_size,
            linked_members,
            retrained: false,
        }
    }

    /// Number of documents (seed + ingested).
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// A seeded state always has documents.
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.partition.cluster_count()
    }

    /// Snapshot of the live partition (canonical first-occurrence labels).
    pub fn partition(&self) -> Partition {
        self.partition.partition()
    }

    /// The trained decision model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The grown block.
    pub fn block(&self) -> &PreparedBlock {
        &self.block
    }

    /// The raw documents in block order (seed batch first).
    pub fn documents(&self) -> &[StoredDocument] {
        &self.documents
    }

    /// The seed batch's entity labels.
    pub fn seed_labels(&self) -> &[u32] {
        &self.seed_labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_core::resolver::ResolverConfig;
    use weber_extract::gazetteer::Gazetteer;
    use weber_extract::pipeline::Extractor;

    fn extractor() -> Extractor {
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        Extractor::new(&g)
    }

    fn stored(text: &str) -> StoredDocument {
        StoredDocument {
            text: text.to_string(),
            url: None,
        }
    }

    fn seeded() -> (NameState, Extractor) {
        let e = extractor();
        let texts = [
            "databases are fun and databases are important",
            "databases are hard but databases pay well",
            "gardening tips for growing roses",
            "gardening advice on pruning roses",
        ];
        let documents: Vec<StoredDocument> = texts.iter().map(|t| stored(t)).collect();
        let features: Vec<PageFeatures> = texts.iter().map(|t| e.extract(t, None)).collect();
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let state = NameState::seed(
            "cohen",
            documents,
            features,
            &[0, 0, 1, 1],
            &resolver,
            WordVectorScheme::default(),
            AssignmentPolicy::TransitiveClosure,
        )
        .unwrap();
        (state, e)
    }

    #[test]
    fn seed_trains_and_partitions() {
        let (state, _) = seeded();
        assert_eq!(state.len(), 4);
        // Same-label pairs are merged in the seed partition.
        let p = state.partition();
        assert!(p.same_cluster(0, 1));
        assert!(p.same_cluster(2, 3));
        assert!(!p.same_cluster(0, 2));
    }

    #[test]
    fn empty_seed_is_rejected() {
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let err = NameState::seed(
            "cohen",
            Vec::new(),
            Vec::new(),
            &[],
            &resolver,
            WordVectorScheme::default(),
            AssignmentPolicy::TransitiveClosure,
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::EmptySeed(_)));
    }

    #[test]
    fn mismatched_seed_batch_is_rejected_in_release_builds_too() {
        let e = extractor();
        let texts = ["databases one", "databases two", "gardening three"];
        let documents: Vec<StoredDocument> = texts.iter().map(|t| stored(t)).collect();
        let features: Vec<PageFeatures> = texts.iter().map(|t| e.extract(t, None)).collect();
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let err = NameState::seed(
            "cohen",
            documents,
            features,
            &[0, 1], // one label short
            &resolver,
            WordVectorScheme::default(),
            AssignmentPolicy::TransitiveClosure,
        )
        .unwrap_err();
        assert_eq!(
            err,
            StreamError::SeedMismatch {
                name: "cohen".into(),
                docs: 3,
                labels: 2,
            }
        );
    }

    #[test]
    fn ingest_grows_the_block_and_partition() {
        let (mut state, e) = seeded();
        let text = "databases are fun and databases are hard";
        let a = state.ingest(stored(text), e.extract(text, None));
        assert_eq!(a.doc, 4);
        assert_eq!(state.len(), 5);
        assert_eq!(state.partition().len(), 5);
        assert_eq!(state.documents().len(), 5);
        assert_eq!(state.seed_labels(), &[0, 0, 1, 1]);
    }

    #[test]
    fn dissimilar_document_founds_a_new_cluster() {
        let (mut state, e) = seeded();
        let text = "zebra xylophone quantum baseball";
        let a = state.ingest(stored(text), e.extract(text, None));
        assert!(a.is_new_cluster, "{a:?}");
        assert_eq!(a.cluster_size, 1);
        assert_eq!(a.linked_members, 0);
    }

    #[test]
    fn linkage_policy_never_merges_existing_clusters() {
        let e = extractor();
        let texts = [
            "databases are fun and databases are important",
            "databases are hard but databases pay well",
            "gardening tips for growing roses",
            "gardening advice on pruning roses",
        ];
        let documents: Vec<StoredDocument> = texts.iter().map(|t| stored(t)).collect();
        let features: Vec<PageFeatures> = texts.iter().map(|t| e.extract(t, None)).collect();
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let mut state = NameState::seed(
            "cohen",
            documents,
            features,
            &[0, 0, 1, 1],
            &resolver,
            WordVectorScheme::default(),
            AssignmentPolicy::Linkage {
                linkage: weber_graph::incremental::Linkage::Average,
                threshold: 0.5,
            },
        )
        .unwrap();
        let before = state.cluster_count();
        let text = "databases and gardening together";
        state.ingest(stored(text), e.extract(text, None));
        // Linkage assignment joins at most one cluster; the count can only
        // stay (joined) or grow by one (new singleton).
        assert!(state.cluster_count() >= before);
        assert!(state.cluster_count() <= before + 1);
    }
}
