//! Serialisable summaries of the live streaming state.

use serde::{Deserialize, Serialize};

/// Summary of one name's streaming state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameSnapshot {
    /// The ambiguous name.
    pub name: String,
    /// Documents held (seed + ingested).
    pub docs: usize,
    /// Live cluster count.
    pub clusters: usize,
    /// Name of the best-graph-selected similarity function.
    pub function: String,
    /// Label of the selected decision criterion.
    pub criterion: String,
    /// Training accuracy of the selected layer.
    pub accuracy: f64,
}

/// Summary of the whole service state, one entry per seeded name,
/// sorted by name for deterministic output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Per-name summaries.
    pub names: Vec<NameSnapshot>,
}

impl Snapshot {
    /// Total documents across names.
    pub fn total_docs(&self) -> usize {
        self.names.iter().map(|n| n.docs).sum()
    }

    /// Total clusters across names.
    pub fn total_clusters(&self) -> usize {
        self.names.iter().map(|n| n.clusters).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> Snapshot {
        Snapshot {
            names: vec![
                NameSnapshot {
                    name: "cohen".into(),
                    docs: 5,
                    clusters: 2,
                    function: "F8".into(),
                    criterion: "thr".into(),
                    accuracy: 0.9,
                },
                NameSnapshot {
                    name: "smith".into(),
                    docs: 3,
                    clusters: 3,
                    function: "F4".into(),
                    criterion: "eq10".into(),
                    accuracy: 0.8,
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_names() {
        let s = snapshot();
        assert_eq!(s.total_docs(), 8);
        assert_eq!(s.total_clusters(), 5);
    }

    #[test]
    fn json_roundtrip() {
        let s = snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
