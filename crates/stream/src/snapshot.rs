//! Serialisable summaries of the live streaming state, and the on-disk
//! per-name state records `persist`/`restore` round-trip through.
//!
//! # On-disk format
//!
//! One JSON file per name, named `<hex(name)>.state.json` inside the
//! configured state directory (hex-encoding the name keeps arbitrary
//! names filesystem-safe and reversible). Every file starts with a
//! versioned header — `magic` and `version` fields — that is validated
//! *before* the typed decode, so a stale or foreign file is rejected with
//! an explicit [`StreamError::SnapshotRejected`] instead of being
//! misread.
//!
//! The record stores the durable form of a name's state: the raw
//! documents (seed batch first, in block order) plus the seed labels,
//! alongside the *expected* trained-model selection and partition
//! labelling. Restoring replays the documents through the deterministic
//! seed/ingest pipeline and then verifies the replayed state against the
//! recorded expectation; a mismatch (e.g. the daemon was restarted under
//! a different resolver configuration) rejects the file rather than
//! silently serving a different partition.
//!
//! Writes are atomic per file: the record is written to a `.tmp` sibling
//! and renamed into place, so a crash mid-write never leaves a truncated
//! `.state.json` behind.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::StreamError;

/// Magic string identifying a weber-stream state file.
pub const STATE_FILE_MAGIC: &str = "weber-stream-state";
/// Current on-disk format version; files with any other version are
/// rejected.
pub const STATE_FILE_VERSION: u32 = 1;
/// File-name suffix of per-name state records.
pub const STATE_FILE_SUFFIX: &str = ".state.json";

/// Summary of one name's streaming state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameSnapshot {
    /// The ambiguous name.
    pub name: String,
    /// Documents held (seed + ingested).
    pub docs: usize,
    /// Live cluster count.
    pub clusters: usize,
    /// Name of the best-graph-selected similarity function.
    pub function: String,
    /// Label of the selected decision criterion.
    pub criterion: String,
    /// Training accuracy of the selected layer.
    pub accuracy: f64,
    /// Member mention (document) ids of each live cluster, each ascending,
    /// ordered by smallest member. The `resolve` op puts these on the wire
    /// (entity materialization needs them); the `snapshot` op keeps its
    /// summary shape and leaves them off.
    pub members: Vec<Vec<usize>>,
}

/// Summary of the whole service state, one entry per seeded name,
/// sorted by name for deterministic output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Per-name summaries.
    pub names: Vec<NameSnapshot>,
}

impl Snapshot {
    /// Total documents across names.
    pub fn total_docs(&self) -> usize {
        self.names.iter().map(|n| n.docs).sum()
    }

    /// Total clusters across names.
    pub fn total_clusters(&self) -> usize {
        self.names.iter().map(|n| n.clusters).sum()
    }
}

/// One raw document retained for persistence: the exact text and URL the
/// feature extractor saw, which is the durable (extractor-independent)
/// form of per-document state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredDocument {
    /// Page text.
    pub text: String,
    /// Page URL, when known.
    pub url: Option<String>,
}

/// The persisted record of one name's full streaming state.
///
/// `documents` holds every document in block order, the first
/// `seed_labels.len()` of which form the labelled seed batch.
/// `function`, `criterion` and `partition` record what the live state
/// looked like at persist time; restore replays the documents and
/// verifies the replayed state reproduces them exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameRecord {
    /// File-format magic ([`STATE_FILE_MAGIC`]).
    pub magic: String,
    /// File-format version ([`STATE_FILE_VERSION`]).
    pub version: u32,
    /// The ambiguous name.
    pub name: String,
    /// Entity labels of the seed batch (documents `0..seed_labels.len()`).
    pub seed_labels: Vec<u32>,
    /// Every document in block order, seed batch first.
    pub documents: Vec<StoredDocument>,
    /// Selected similarity function at persist time (verified on restore).
    pub function: String,
    /// Selected decision criterion at persist time (verified on restore).
    pub criterion: String,
    /// Canonical partition labels at persist time (verified on restore).
    pub partition: Vec<u32>,
}

impl NameRecord {
    /// Serialise to the on-disk JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state records serialise")
    }

    /// Parse and validate an on-disk record. The header (magic + version)
    /// is checked against the raw value tree before the typed decode, so
    /// files written by anything else — or by a different format version —
    /// fail with [`StreamError::SnapshotRejected`], never a misread.
    pub fn from_json(json: &str) -> Result<Self, StreamError> {
        let value = serde_json::parse_value(json)
            .map_err(|e| StreamError::SnapshotRejected(format!("not valid JSON: {e}")))?;
        match value.get("magic").and_then(|m| m.as_str()) {
            Some(STATE_FILE_MAGIC) => {}
            Some(other) => {
                return Err(StreamError::SnapshotRejected(format!(
                    "wrong magic '{other}' (expected '{STATE_FILE_MAGIC}')"
                )))
            }
            None => {
                return Err(StreamError::SnapshotRejected(
                    "missing 'magic' header field".into(),
                ))
            }
        }
        match value.get("version").and_then(|v| v.as_u64()) {
            Some(v) if v == u64::from(STATE_FILE_VERSION) => {}
            Some(v) => {
                return Err(StreamError::SnapshotRejected(format!(
                    "unsupported version {v} (this build reads version {STATE_FILE_VERSION})"
                )))
            }
            None => {
                return Err(StreamError::SnapshotRejected(
                    "missing 'version' header field".into(),
                ))
            }
        }
        let record: NameRecord = serde_json::from_value(&value)
            .map_err(|e| StreamError::SnapshotRejected(format!("malformed record: {e}")))?;
        if record.seed_labels.is_empty() || record.seed_labels.len() > record.documents.len() {
            return Err(StreamError::SnapshotRejected(format!(
                "inconsistent record: {} seed labels over {} documents",
                record.seed_labels.len(),
                record.documents.len()
            )));
        }
        Ok(record)
    }
}

/// Hex-encode a name into its filesystem-safe state-file name.
pub fn state_file_name(name: &str) -> String {
    let mut hex = String::with_capacity(name.len() * 2 + STATE_FILE_SUFFIX.len());
    for b in name.bytes() {
        hex.push_str(&format!("{b:02x}"));
    }
    hex.push_str(STATE_FILE_SUFFIX);
    hex
}

/// Recover the name a state file was written for; `None` when the file
/// name is not a well-formed `<hex>.state.json`.
pub fn name_from_state_file(file_name: &str) -> Option<String> {
    let hex = file_name.strip_suffix(STATE_FILE_SUFFIX)?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        bytes.push(u8::from_str_radix(&hex[i..i + 2], 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

/// Path of `name`'s state file inside `dir`.
pub fn state_file_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(state_file_name(name))
}

/// Atomically write a record into `dir` (creating the directory if
/// needed): write to a `.tmp` sibling, then rename into place. Returns
/// the final path.
pub fn write_record(dir: &Path, record: &NameRecord) -> Result<PathBuf, StreamError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        StreamError::Persistence(format!("cannot create state dir {}: {e}", dir.display()))
    })?;
    let path = state_file_path(dir, &record.name);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, record.to_json())
        .map_err(|e| StreamError::Persistence(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, &path).map_err(|e| {
        // Leave no temp file behind on a failed rename.
        let _ = std::fs::remove_file(&tmp);
        StreamError::Persistence(format!("cannot rename into {}: {e}", path.display()))
    })?;
    Ok(path)
}

/// Read and validate `name`'s record from `dir`; `Ok(None)` when no file
/// exists for the name.
pub fn read_record(dir: &Path, name: &str) -> Result<Option<NameRecord>, StreamError> {
    let path = state_file_path(dir, name);
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(StreamError::Persistence(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    let record = NameRecord::from_json(&json)?;
    if record.name != name {
        return Err(StreamError::SnapshotRejected(format!(
            "file for '{name}' records state of '{}'",
            record.name
        )));
    }
    Ok(Some(record))
}

/// File-name suffix of per-name entity-table records, written next to
/// the `.state.json` clustering records.
pub const ENTITY_FILE_SUFFIX: &str = ".entity.json";

/// Path of `name`'s entity-table file inside `dir`
/// (`<hex(name)>.entity.json`, same hex encoding as the state file).
pub fn entity_file_path(dir: &Path, name: &str) -> PathBuf {
    let state = state_file_name(name);
    let hex = state.strip_suffix(STATE_FILE_SUFFIX).unwrap_or(&state);
    dir.join(format!("{hex}{ENTITY_FILE_SUFFIX}"))
}

/// Atomically write one name's entity table into `dir` (creating the
/// directory if needed). Returns the final path.
pub fn write_entity_record(
    dir: &Path,
    table: &weber_entity::TableState,
) -> Result<PathBuf, StreamError> {
    std::fs::create_dir_all(dir).map_err(|e| {
        StreamError::Persistence(format!("cannot create state dir {}: {e}", dir.display()))
    })?;
    let path = entity_file_path(dir, &table.name);
    let tmp = path.with_extension("json.tmp");
    let json = serde_json::to_string(table)
        .map_err(|e| StreamError::Persistence(format!("cannot encode entity table: {e}")))?;
    std::fs::write(&tmp, json)
        .map_err(|e| StreamError::Persistence(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, &path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        StreamError::Persistence(format!("cannot rename into {}: {e}", path.display()))
    })?;
    Ok(path)
}

/// Read and validate `name`'s entity-table record from `dir`; `Ok(None)`
/// when no file exists. A file with the wrong magic, version, or name is
/// rejected with [`StreamError::SnapshotRejected`], never misread.
pub fn read_entity_record(
    dir: &Path,
    name: &str,
) -> Result<Option<weber_entity::TableState>, StreamError> {
    let path = entity_file_path(dir, name);
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(StreamError::Persistence(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    let table: weber_entity::TableState = serde_json::from_str(&json)
        .map_err(|e| StreamError::SnapshotRejected(format!("malformed entity table: {e}")))?;
    if table.magic != weber_entity::ENTITY_FILE_MAGIC
        || table.version != weber_entity::ENTITY_FILE_VERSION
    {
        return Err(StreamError::SnapshotRejected(format!(
            "not a version-{} entity table: magic {:?} version {}",
            weber_entity::ENTITY_FILE_VERSION,
            table.magic,
            table.version
        )));
    }
    if table.name != name {
        return Err(StreamError::SnapshotRejected(format!(
            "entity file for '{name}' records table of '{}'",
            table.name
        )));
    }
    Ok(Some(table))
}

/// Names with a state file inside `dir`, sorted; an absent directory is
/// simply empty.
pub fn stored_names(dir: &Path) -> Result<Vec<String>, StreamError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(StreamError::Persistence(format!(
                "cannot list state dir {}: {e}",
                dir.display()
            )))
        }
    };
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| {
            StreamError::Persistence(format!("cannot list state dir {}: {e}", dir.display()))
        })?;
        if let Some(name) = entry.file_name().to_str().and_then(name_from_state_file) {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> Snapshot {
        Snapshot {
            names: vec![
                NameSnapshot {
                    name: "cohen".into(),
                    docs: 5,
                    clusters: 2,
                    function: "F8".into(),
                    criterion: "thr".into(),
                    accuracy: 0.9,
                    members: vec![vec![0, 1, 4], vec![2, 3]],
                },
                NameSnapshot {
                    name: "smith".into(),
                    docs: 3,
                    clusters: 3,
                    function: "F4".into(),
                    criterion: "eq10".into(),
                    accuracy: 0.8,
                    members: vec![vec![0], vec![1], vec![2]],
                },
            ],
        }
    }

    fn record() -> NameRecord {
        NameRecord {
            magic: STATE_FILE_MAGIC.into(),
            version: STATE_FILE_VERSION,
            name: "cohen".into(),
            seed_labels: vec![0, 0, 1],
            documents: vec![
                StoredDocument {
                    text: "databases".into(),
                    url: None,
                },
                StoredDocument {
                    text: "more databases".into(),
                    url: Some("http://db.example.com".into()),
                },
                StoredDocument {
                    text: "gardening".into(),
                    url: None,
                },
                StoredDocument {
                    text: "streamed later".into(),
                    url: None,
                },
            ],
            function: "F8".into(),
            criterion: "thr".into(),
            partition: vec![0, 0, 1, 0],
        }
    }

    #[test]
    fn totals_sum_over_names() {
        let s = snapshot();
        assert_eq!(s.total_docs(), 8);
        assert_eq!(s.total_clusters(), 5);
    }

    #[test]
    fn json_roundtrip() {
        let s = snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn record_roundtrips_through_json() {
        let r = record();
        let back = NameRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_magic_and_version_are_rejected_not_misread() {
        let mut r = record();
        r.magic = "not-a-weber-file".into();
        assert!(matches!(
            NameRecord::from_json(&r.to_json()),
            Err(StreamError::SnapshotRejected(msg)) if msg.contains("magic")
        ));
        let mut r = record();
        r.version = STATE_FILE_VERSION + 1;
        assert!(matches!(
            NameRecord::from_json(&r.to_json()),
            Err(StreamError::SnapshotRejected(msg)) if msg.contains("version")
        ));
        assert!(matches!(
            NameRecord::from_json("{}"),
            Err(StreamError::SnapshotRejected(_))
        ));
        assert!(matches!(
            NameRecord::from_json("garbage"),
            Err(StreamError::SnapshotRejected(_))
        ));
    }

    #[test]
    fn inconsistent_seed_counts_are_rejected() {
        let mut r = record();
        r.seed_labels = vec![0; r.documents.len() + 1];
        assert!(matches!(
            NameRecord::from_json(&r.to_json()),
            Err(StreamError::SnapshotRejected(msg)) if msg.contains("seed labels")
        ));
        let mut r = record();
        r.seed_labels.clear();
        assert!(NameRecord::from_json(&r.to_json()).is_err());
    }

    #[test]
    fn file_names_roundtrip_arbitrary_names() {
        for name in ["cohen", "name with spaces", "päivi/δ:*?", ""] {
            let file = state_file_name(name);
            assert!(file.ends_with(STATE_FILE_SUFFIX));
            assert!(!file.trim_end_matches(STATE_FILE_SUFFIX).contains('/'));
            assert_eq!(name_from_state_file(&file).as_deref(), Some(name));
        }
        assert_eq!(name_from_state_file("nope.json"), None);
        assert_eq!(name_from_state_file("xyz.state.json"), None);
    }

    #[test]
    fn entity_records_roundtrip_next_to_state_files() {
        let dir = std::env::temp_dir().join(format!(
            "weber_entity_record_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = weber_entity::EntityStore::new("cohen");
        store.materialize(
            &[vec![0, 1], vec![2]],
            &[
                weber_entity::MentionOrigin::Seed { label: 0 },
                weber_entity::MentionOrigin::Seed { label: 0 },
                weber_entity::MentionOrigin::Ingest,
            ],
        );
        let table = weber_entity::TableState::capture(&store);
        let path = write_entity_record(&dir, &table).unwrap();
        assert!(path.to_string_lossy().ends_with(ENTITY_FILE_SUFFIX));
        // The entity file sits next to (not on top of) the state file.
        assert_ne!(path, state_file_path(&dir, "cohen"));
        let back = read_entity_record(&dir, "cohen").unwrap().unwrap();
        assert_eq!(back, table);
        assert_eq!(read_entity_record(&dir, "nobody").unwrap(), None);
        // A tampered header is rejected, not misread.
        let mut bad = table.clone();
        bad.version = 99;
        std::fs::write(&path, serde_json::to_string(&bad).unwrap()).unwrap();
        assert!(matches!(
            read_entity_record(&dir, "cohen"),
            Err(StreamError::SnapshotRejected(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join(format!(
            "weber_snapshot_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let r = record();
        let path = write_record(&dir, &r).unwrap();
        assert!(path.exists());
        // No temp residue once the write has landed.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(residue.is_empty());
        assert_eq!(read_record(&dir, "cohen").unwrap().unwrap(), r);
        assert_eq!(read_record(&dir, "nobody").unwrap(), None);
        assert_eq!(stored_names(&dir).unwrap(), vec!["cohen".to_string()]);
        assert_eq!(
            stored_names(&dir.join("missing")).unwrap(),
            Vec::<String>::new()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
