//! The `weber serve` daemon: NDJSON over stdin/stdout or a TCP socket.
//!
//! The TCP front end defaults to the `weber-net` epoll reactor
//! ([`IoMode::Event`]): one acceptor/reactor thread multiplexes every
//! connection, a small worker pool shared by all clients executes request
//! lines (sticky-routed by name, exactly like
//! [`StreamService`](crate::service::StreamService) routes its queues),
//! and a per-connection reorder buffer keeps replies in request order.
//! That holds tens of thousands of mostly-idle persistent connections on
//! a handful of threads. `health` probes are answered on the reactor
//! thread itself, bypassing the queues; data-plane lines shed with an
//! `overloaded` reply when their worker queue is full; control-plane
//! lines never shed.
//!
//! [`IoMode::Threads`] keeps the legacy model — one handler thread per
//! client, each with its own `StreamService` — as a fallback. In both
//! modes the wire contract is identical: one reply line per request
//! line, in request order; over-cap clients get one `overloaded` line
//! and a close; any client sending `shutdown` drains the daemon.
//!
//! The stdio front end ([`serve_stdio`]) still runs the classic
//! single-connection read loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use weber_net::{IoMode, RouteClass, ServerOptions};

use crate::error::StreamError;
use crate::protocol::{self, Request};
use crate::resolver::StreamResolver;
use crate::service::StreamService;

/// How often blocked reads and the acceptor wake up to check the shared
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Per-connection socket read timeout; bounds how long a shutdown can
/// wait on an idle connection.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Tuning knobs of the TCP front end.
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Worker threads executing request lines (shared by every
    /// connection in event mode, per connection in threads mode).
    pub workers: usize,
    /// Admission-queue capacity per worker.
    pub queue_capacity: usize,
    /// Maximum simultaneous client connections; clients beyond the cap
    /// are answered with an `overloaded` error line and closed.
    pub max_connections: usize,
    /// Which front-end implementation to run.
    pub io: IoMode,
    /// Evict connections silent for this long (event mode only). `None`
    /// never evicts.
    pub idle_timeout: Option<Duration>,
    /// Lines admitted but unanswered per connection before its reads
    /// pause (event mode only).
    pub max_pipeline: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_connections: 64,
            io: IoMode::Event,
            idle_timeout: None,
            max_pipeline: 256,
        }
    }
}

/// What one connection's read loop did.
struct ConnectionOutcome {
    /// Requests admitted on this connection.
    admitted: u64,
    /// Whether this connection requested daemon shutdown.
    saw_shutdown: bool,
    /// The connection-level I/O error that ended the loop, if any. Every
    /// request admitted before the error was still processed.
    error: Option<std::io::Error>,
}

/// Serve NDJSON over stdin/stdout until EOF or `shutdown`. Returns the
/// number of requests admitted.
pub fn serve_stdio(
    resolver: Arc<StreamResolver>,
    workers: usize,
    queue_capacity: usize,
) -> std::io::Result<u64> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let outcome = run_connection(
        resolver,
        stdin.lock(),
        &mut out,
        workers,
        queue_capacity,
        None,
    );
    if let Some(e) = outcome.error {
        return Err(e);
    }
    out.flush()?;
    Ok(outcome.admitted)
}

/// Bind `addr` and serve clients concurrently (see the module docs for
/// the concurrency and shutdown model). Returns the total number of
/// requests admitted across all connections.
pub fn serve_tcp(
    resolver: Arc<StreamResolver>,
    addr: &str,
    options: &TcpOptions,
) -> std::io::Result<u64> {
    let listener = TcpListener::bind(addr)?;
    serve_listener(resolver, listener, options)
}

/// [`serve_tcp`] over an already-bound listener (callers that need the
/// ephemeral port bind with `:0` themselves and pass the listener in).
/// Dispatches to the epoll reactor or the legacy thread-per-connection
/// loop according to [`TcpOptions::io`].
pub fn serve_listener(
    resolver: Arc<StreamResolver>,
    listener: TcpListener,
    options: &TcpOptions,
) -> std::io::Result<u64> {
    match options.io {
        IoMode::Event => serve_listener_event(resolver, listener, options),
        IoMode::Threads => serve_listener_threaded(resolver, listener, options),
    }
}

/// The adapter putting a [`StreamResolver`] behind the `weber-net`
/// reactor: classification mirrors
/// [`StreamService`](crate::service::StreamService)'s routing (named ops
/// stick to `hash(name)`, control ops are never shed, `health` bypasses
/// the queues entirely), and processing goes through the same
/// [`process_line`](crate::service::process_line) every other path uses.
struct ResolverService {
    resolver: Arc<StreamResolver>,
}

/// The same name→worker key `StreamService::route` computes.
fn name_key(name: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    hasher.finish()
}

impl weber_net::NdjsonService for ResolverService {
    fn classify(&self, line: &str) -> RouteClass {
        match protocol::parse_request(line) {
            // Health never waits behind the backlog it is probing, and a
            // malformed line's error reply costs nothing to compute:
            // both are answered on the reactor thread.
            Ok(Request::Health) | Err(_) => RouteClass::Immediate,
            Ok(Request::Seed { name, .. })
            | Ok(Request::Ingest { name, .. })
            | Ok(Request::Resolve { name })
            | Ok(Request::Entities { name: Some(name) })
            | Ok(Request::SameAs { name, .. })
            | Ok(Request::Constraint { name, .. }) => RouteClass::Data(name_key(&name)),
            Ok(_) => RouteClass::Control,
        }
    }

    fn process(&self, line: &str) -> weber_net::Reply {
        let shutdown = line.contains("shutdown") && protocol::is_shutdown(line);
        weber_net::Reply {
            line: crate::service::process_line(&self.resolver, line),
            shutdown,
        }
    }

    fn overloaded_reply(&self) -> String {
        protocol::err_response(&StreamError::Overloaded)
    }

    fn parse_error_reply(&self, detail: &str) -> String {
        protocol::err_response(&StreamError::Parse(detail.to_string()))
    }

    fn internal_error_reply(&self, detail: &str) -> String {
        protocol::err_response(&StreamError::InvalidRequest(detail.to_string()))
    }

    fn is_shutdown_line(&self, line: &str) -> bool {
        // The substring test keeps the reactor from re-parsing every
        // line; only candidates pay for the full parse.
        line.contains("shutdown") && protocol::is_shutdown(line)
    }
}

/// The epoll front end: one reactor, one shared worker pool, `net.*`
/// metrics surfaced through the resolver's registry.
fn serve_listener_event(
    resolver: Arc<StreamResolver>,
    listener: TcpListener,
    options: &TcpOptions,
) -> std::io::Result<u64> {
    let registry = Arc::clone(resolver.metrics().registry());
    let service = Arc::new(ResolverService { resolver });
    weber_net::serve(
        service,
        listener,
        ServerOptions {
            workers: options.workers,
            queue_capacity: options.queue_capacity,
            max_connections: options.max_connections.max(1),
            idle_timeout: options.idle_timeout,
            max_pipeline: options.max_pipeline,
            registry: Some(registry),
            ..ServerOptions::default()
        },
    )
}

/// The legacy thread-per-connection front end, selectable with
/// `--io threads`.
fn serve_listener_threaded(
    resolver: Arc<StreamResolver>,
    listener: TcpListener,
    options: &TcpOptions,
) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

    while !shutdown.load(Ordering::Relaxed) {
        // Reap finished handler threads on every iteration — doing it
        // only on the WouldBlock branch let the vector grow without
        // bound under a steady stream of short-lived connections.
        handles.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, peer)) => {
                if active.load(Ordering::Relaxed) >= options.max_connections.max(1) {
                    refuse_connection(stream, &peer.to_string());
                    continue;
                }
                match spawn_handler(
                    Arc::clone(&resolver),
                    stream,
                    peer.to_string(),
                    options,
                    Arc::clone(&shutdown),
                    Arc::clone(&active),
                    Arc::clone(&total),
                ) {
                    Ok(handle) => handles.push(handle),
                    // Socket setup failed for this one client; the daemon
                    // keeps serving everyone else.
                    Err(e) => eprintln!("weber serve: connection setup failed ({peer}): {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                // A client gave up between SYN and accept; not a listener
                // failure.
                eprintln!("weber serve: transient accept error: {e}");
            }
            Err(e) => {
                // Listener-level failure: drain in-flight connections,
                // then report it.
                shutdown.store(true, Ordering::Relaxed);
                for handle in handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }

    // Graceful shutdown: every in-flight connection notices the flag at
    // its next read-timeout tick and drains.
    for handle in handles {
        let _ = handle.join();
    }
    Ok(total.load(Ordering::Relaxed))
}

/// Answer an over-cap client with one `overloaded` error line and close.
fn refuse_connection(mut stream: TcpStream, peer: &str) {
    let _ = stream.set_nonblocking(false);
    let line = protocol::err_response(&StreamError::Overloaded);
    if writeln!(stream, "{line}").is_err() {
        eprintln!("weber serve: could not refuse connection {peer}");
    }
}

/// Spawn the handler thread for one accepted client.
fn spawn_handler(
    resolver: Arc<StreamResolver>,
    stream: TcpStream,
    peer: String,
    options: &TcpOptions,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    total: Arc<AtomicU64>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    // The listener is non-blocking; the per-connection socket must block,
    // but only up to the read timeout so the loop can poll the shutdown
    // flag while idle.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let workers = options.workers;
    let queue_capacity = options.queue_capacity;
    // Count the connection before the thread starts so the cap check in
    // the acceptor never over-admits.
    active.fetch_add(1, Ordering::Relaxed);
    Ok(std::thread::spawn(move || {
        let outcome = run_connection(
            resolver,
            reader,
            &mut writer,
            workers,
            queue_capacity,
            Some(&shutdown),
        );
        total.fetch_add(outcome.admitted, Ordering::Relaxed);
        if outcome.saw_shutdown {
            shutdown.store(true, Ordering::Relaxed);
        }
        if let Some(e) = outcome.error {
            // Isolated: this connection dies, the daemon keeps serving.
            eprintln!("weber serve: connection {peer}: {e} (closing this connection only)");
        }
        let _ = writer.flush();
        active.fetch_sub(1, Ordering::Relaxed);
    }))
}

/// True when the error is a read-timeout tick rather than a dead peer.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The shared connection loop: admit lines, stream ordered responses to
/// the writer as they complete, stop on EOF, `shutdown`, a raised stop
/// flag, or a connection-level I/O error. Every admitted request is
/// processed before the loop returns, even when the peer is gone.
fn run_connection<R: BufRead, W: Write>(
    resolver: Arc<StreamResolver>,
    mut reader: R,
    writer: &mut W,
    workers: usize,
    queue_capacity: usize,
    stop: Option<&AtomicBool>,
) -> ConnectionOutcome {
    let service = StreamService::start(resolver, workers, queue_capacity);
    let mut admitted = 0u64;
    let mut emitted = 0u64;
    let responses = service.responses();
    let mut saw_shutdown = false;
    let mut error: Option<std::io::Error> = None;
    // Partial lines survive read-timeout ticks: read_line appends, and the
    // buffer is only cleared once a complete line has been taken out.
    let mut buf = String::new();

    'read: loop {
        if stop.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            break;
        }
        match reader.read_line(&mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let line = buf.trim().to_string();
                buf.clear();
                if line.is_empty() {
                    continue;
                }
                saw_shutdown = protocol::is_shutdown(&line);
                service.submit(line);
                admitted += 1;
                // Opportunistically stream whatever responses are ready,
                // keeping the writer hot without blocking admission on
                // slow requests.
                while let Ok(response) = responses.try_recv() {
                    if let Err(e) = writeln!(writer, "{response}") {
                        error = Some(e);
                        break 'read;
                    }
                    emitted += 1;
                }
                if let Err(e) = writer.flush() {
                    error = Some(e);
                    break;
                }
                if saw_shutdown {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // A line that is not valid UTF-8. `read_line` has already
                // consumed it through the newline (and rolled the buffer
                // back), so the stream is positioned at the next line:
                // answer a parse error at this request's position and keep
                // the connection open instead of dropping the client.
                buf.clear();
                service.submit_error(&StreamError::Parse(format!("line is not valid UTF-8: {e}")));
                admitted += 1;
            }
            Err(e) if is_timeout(&e) => {
                // Idle tick: flush anything that completed meanwhile, then
                // go back to polling (the stop check above runs first).
                while let Ok(response) = responses.try_recv() {
                    if let Err(e) = writeln!(writer, "{response}") {
                        error = Some(e);
                        break 'read;
                    }
                    emitted += 1;
                }
                if let Err(e) = writer.flush() {
                    error = Some(e);
                    break;
                }
            }
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }

    // Drain: process everything that was admitted, answering the peer as
    // long as it is still there (a vanished peer only stops the writes).
    let leftover = service.finish();
    while emitted < admitted {
        match leftover.recv() {
            Ok(response) => {
                if error.is_none() {
                    if let Err(e) = writeln!(writer, "{response}") {
                        error = Some(e);
                    }
                }
                emitted += 1;
            }
            Err(_) => break,
        }
    }
    if error.is_none() {
        if let Err(e) = writer.flush() {
            error = Some(e);
        }
    }
    ConnectionOutcome {
        admitted,
        saw_shutdown,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use std::io::Cursor;
    use weber_extract::gazetteer::Gazetteer;

    fn resolver() -> Arc<StreamResolver> {
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        Arc::new(StreamResolver::new(StreamConfig::default(), &g).unwrap())
    }

    fn seed_line() -> String {
        concat!(
            r#"{"op":"seed","name":"cohen","docs":["#,
            r#"{"text":"databases are fun and databases are important","label":0},"#,
            r#"{"text":"databases are hard but databases pay well","label":0},"#,
            r#"{"text":"gardening tips for growing roses","label":1},"#,
            r#"{"text":"gardening advice on pruning roses","label":1}]}"#
        )
        .to_string()
    }

    fn run(input: String) -> Vec<String> {
        let mut out: Vec<u8> = Vec::new();
        let outcome = run_connection(resolver(), Cursor::new(input), &mut out, 2, 16, None);
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines.len() as u64, outcome.admitted);
        lines
    }

    #[test]
    fn answers_every_request_in_order() {
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            seed_line(),
            r#"{"op":"ingest","name":"cohen","text":"databases are great"}"#,
            r#"{"op":"snapshot"}"#,
            r#"{"op":"flush"}"#
        );
        let lines = run(input);
        assert_eq!(lines.len(), 4);
        let ops: Vec<String> = lines
            .iter()
            .map(|l| {
                serde_json::parse_value(l)
                    .unwrap()
                    .get("op")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ops, vec!["seed", "ingest", "snapshot", "flush"]);
    }

    #[test]
    fn shutdown_stops_the_loop_early() {
        let input = format!(
            "{}\n{}\n{}\n",
            seed_line(),
            r#"{"op":"shutdown"}"#,
            r#"{"op":"flush"}"#
        );
        let lines = run(input);
        // The flush after shutdown is never admitted.
        assert_eq!(lines.len(), 2);
        let last = serde_json::parse_value(&lines[1]).unwrap();
        assert_eq!(last.get("op").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn blank_lines_are_skipped_and_errors_are_answered() {
        let input = "\n\ngarbage\n".to_string();
        let lines = run(input);
        assert_eq!(lines.len(), 1);
        let v = serde_json::parse_value(&lines[0]).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn invalid_utf8_lines_get_a_parse_error_not_a_dropped_connection() {
        // \xff\xfe is not valid UTF-8: read_line fails with InvalidData.
        // The old loop treated that as a connection error and hung up;
        // now the line is answered with a parse error and the next line
        // is served normally.
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"\xff\xfe{garbage\n");
        input.extend_from_slice(b"{\"op\":\"flush\"}\n");
        let mut out: Vec<u8> = Vec::new();
        let outcome = run_connection(resolver(), Cursor::new(input), &mut out, 2, 16, None);
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        assert_eq!(outcome.admitted, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        let first = serde_json::parse_value(lines[0]).unwrap();
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("parse"));
        let second = serde_json::parse_value(lines[1]).unwrap();
        assert_eq!(second.get("op").unwrap().as_str(), Some("flush"));
    }

    #[test]
    fn a_raised_stop_flag_ends_the_loop_before_reading() {
        let stop = AtomicBool::new(true);
        let mut out: Vec<u8> = Vec::new();
        let input = format!("{}\n", seed_line());
        let outcome = run_connection(resolver(), Cursor::new(input), &mut out, 2, 16, Some(&stop));
        assert_eq!(outcome.admitted, 0);
        assert!(!outcome.saw_shutdown);
        assert!(outcome.error.is_none());
    }

    #[test]
    fn a_dead_writer_is_reported_not_propagated_as_panic() {
        /// Writer that fails after the first byte, like a peer that reset.
        struct DeadWriter;
        impl Write for DeadWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "peer gone",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let input = format!(
            "{}\n{}\n",
            seed_line(),
            r#"{"op":"ingest","name":"cohen","text":"databases still count"}"#
        );
        let mut writer = DeadWriter;
        let outcome = run_connection(resolver(), Cursor::new(input), &mut writer, 2, 16, None);
        assert!(
            outcome.error.is_some(),
            "the write failure must be surfaced"
        );
        // Everything read before the failure was still admitted and
        // processed; the error is the connection's problem, not the
        // daemon's.
        assert!(outcome.admitted >= 1);
    }

    #[test]
    fn tcp_round_trip() {
        use std::net::TcpStream;
        let resolver = resolver();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_listener(resolver, listener, &TcpOptions::default()).unwrap()
        });
        let client = TcpStream::connect(addr).unwrap();
        let mut writer = client.try_clone().unwrap();
        let mut reader = BufReader::new(client);
        writeln!(writer, "{}", seed_line()).unwrap();
        writeln!(
            writer,
            r#"{{"op":"ingest","name":"cohen","text":"databases rock"}}"#
        )
        .unwrap();
        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        let admitted = server.join().unwrap();
        assert_eq!(admitted, 3);
        let ingest = serde_json::parse_value(&lines[1]).unwrap();
        assert_eq!(ingest.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(ingest.get("doc").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn threaded_io_mode_round_trips_too() {
        use std::net::TcpStream;
        let resolver = resolver();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = TcpOptions {
            io: weber_net::IoMode::Threads,
            ..TcpOptions::default()
        };
        let server =
            std::thread::spawn(move || serve_listener(resolver, listener, &options).unwrap());
        let client = TcpStream::connect(addr).unwrap();
        let mut writer = client.try_clone().unwrap();
        let mut reader = BufReader::new(client);
        writeln!(writer, "{}", seed_line()).unwrap();
        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(server.join().unwrap(), 2);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[1].contains("shutdown"), "{}", lines[1]);
    }

    #[test]
    fn over_cap_clients_are_refused_with_an_overloaded_line() {
        use std::net::TcpStream;
        let resolver = resolver();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let options = TcpOptions {
            max_connections: 1,
            ..TcpOptions::default()
        };
        let server =
            std::thread::spawn(move || serve_listener(resolver, listener, &options).unwrap());
        // First client occupies the single slot.
        let first = TcpStream::connect(addr).unwrap();
        let mut first_writer = first.try_clone().unwrap();
        let mut first_reader = BufReader::new(first);
        writeln!(first_writer, "{}", seed_line()).unwrap();
        let mut line = String::new();
        first_reader.read_line(&mut line).unwrap();
        // Second client is over the cap: one overloaded line, then EOF.
        let second = TcpStream::connect(addr).unwrap();
        let mut second_reader = BufReader::new(second);
        let mut refusal = String::new();
        second_reader.read_line(&mut refusal).unwrap();
        let v = serde_json::parse_value(refusal.trim()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("overloaded"));
        let mut rest = String::new();
        assert_eq!(second_reader.read_line(&mut rest).unwrap(), 0, "{rest}");
        // The first client still works, and can stop the daemon.
        writeln!(first_writer, r#"{{"op":"shutdown"}}"#).unwrap();
        line.clear();
        first_reader.read_line(&mut line).unwrap();
        assert!(line.contains("shutdown"), "{line}");
        server.join().unwrap();
    }
}
