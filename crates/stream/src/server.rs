//! The `weber serve` daemon: NDJSON over stdin/stdout or a TCP socket.
//!
//! The read loop admits one request per line into the
//! [`StreamService`](crate::service::StreamService); a writer thread
//! drains the ordered response stream to the output. The loop stops on
//! EOF or after admitting a `shutdown` request; either way the queue is
//! drained and every admitted request is answered before the connection
//! closes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;

use crate::protocol;
use crate::resolver::StreamResolver;
use crate::service::StreamService;

/// Serve NDJSON over stdin/stdout until EOF or `shutdown`. Returns the
/// number of requests admitted.
pub fn serve_stdio(
    resolver: Arc<StreamResolver>,
    workers: usize,
    queue_capacity: usize,
) -> std::io::Result<u64> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let (admitted, _) = run_connection(resolver, stdin.lock(), &mut out, workers, queue_capacity)?;
    out.flush()?;
    Ok(admitted)
}

/// Bind `addr` and serve connections sequentially (one client at a time,
/// all clients sharing the resolver state); a client sending `shutdown`
/// stops the listener after its connection. Returns the total number of
/// requests admitted.
pub fn serve_tcp(
    resolver: Arc<StreamResolver>,
    addr: &str,
    workers: usize,
    queue_capacity: usize,
) -> std::io::Result<u64> {
    let listener = TcpListener::bind(addr)?;
    let mut total = 0u64;
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream.try_clone()?;
        let (admitted, saw_shutdown) = run_connection(
            Arc::clone(&resolver),
            reader,
            &mut writer,
            workers,
            queue_capacity,
        )?;
        writer.flush()?;
        total += admitted;
        if saw_shutdown {
            break;
        }
    }
    Ok(total)
}

/// The shared connection loop: admit lines, stream ordered responses to
/// the writer as they complete, stop on EOF or `shutdown`. Returns
/// (admitted requests, whether shutdown was seen).
fn run_connection<R: BufRead, W: Write>(
    resolver: Arc<StreamResolver>,
    reader: R,
    writer: &mut W,
    workers: usize,
    queue_capacity: usize,
) -> std::io::Result<(u64, bool)> {
    let service = StreamService::start(resolver, workers, queue_capacity);
    let mut admitted = 0u64;
    let mut emitted = 0u64;
    let responses = service.responses();
    let mut saw_shutdown = false;

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        saw_shutdown = protocol::is_shutdown(&line);
        service.submit(line);
        admitted += 1;
        // Opportunistically stream whatever responses are ready, keeping
        // the writer hot without blocking admission on slow requests.
        while let Ok(response) = responses.try_recv() {
            writeln!(writer, "{response}")?;
            emitted += 1;
        }
        writer.flush()?;
        if saw_shutdown {
            break;
        }
    }

    // Drain: answer everything that was admitted.
    let leftover = service.finish();
    while emitted < admitted {
        match leftover.recv() {
            Ok(response) => {
                writeln!(writer, "{response}")?;
                emitted += 1;
            }
            Err(_) => break,
        }
    }
    writer.flush()?;
    Ok((admitted, saw_shutdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use std::io::Cursor;
    use weber_extract::gazetteer::Gazetteer;

    fn resolver() -> Arc<StreamResolver> {
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        Arc::new(StreamResolver::new(StreamConfig::default(), &g).unwrap())
    }

    fn seed_line() -> String {
        concat!(
            r#"{"op":"seed","name":"cohen","docs":["#,
            r#"{"text":"databases are fun and databases are important","label":0},"#,
            r#"{"text":"databases are hard but databases pay well","label":0},"#,
            r#"{"text":"gardening tips for growing roses","label":1},"#,
            r#"{"text":"gardening advice on pruning roses","label":1}]}"#
        )
        .to_string()
    }

    fn run(input: String) -> Vec<String> {
        let mut out: Vec<u8> = Vec::new();
        let (admitted, _) =
            run_connection(resolver(), Cursor::new(input), &mut out, 2, 16).unwrap();
        let lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines.len() as u64, admitted);
        lines
    }

    #[test]
    fn answers_every_request_in_order() {
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            seed_line(),
            r#"{"op":"ingest","name":"cohen","text":"databases are great"}"#,
            r#"{"op":"snapshot"}"#,
            r#"{"op":"flush"}"#
        );
        let lines = run(input);
        assert_eq!(lines.len(), 4);
        let ops: Vec<String> = lines
            .iter()
            .map(|l| {
                serde_json::parse_value(l)
                    .unwrap()
                    .get("op")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ops, vec!["seed", "ingest", "snapshot", "flush"]);
    }

    #[test]
    fn shutdown_stops_the_loop_early() {
        let input = format!(
            "{}\n{}\n{}\n",
            seed_line(),
            r#"{"op":"shutdown"}"#,
            r#"{"op":"flush"}"#
        );
        let lines = run(input);
        // The flush after shutdown is never admitted.
        assert_eq!(lines.len(), 2);
        let last = serde_json::parse_value(&lines[1]).unwrap();
        assert_eq!(last.get("op").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn blank_lines_are_skipped_and_errors_are_answered() {
        let input = "\n\ngarbage\n".to_string();
        let lines = run(input);
        assert_eq!(lines.len(), 1);
        let v = serde_json::parse_value(&lines[0]).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let resolver = resolver();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream.try_clone().unwrap();
            run_connection(resolver, reader, &mut writer, 2, 16).unwrap()
        });
        let client = TcpStream::connect(addr).unwrap();
        let mut writer = client.try_clone().unwrap();
        let mut reader = BufReader::new(client);
        writeln!(writer, "{}", seed_line()).unwrap();
        writeln!(
            writer,
            r#"{{"op":"ingest","name":"cohen","text":"databases rock"}}"#
        )
        .unwrap();
        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        let (admitted, saw_shutdown) = server.join().unwrap();
        assert_eq!(admitted, 3);
        assert!(saw_shutdown);
        let ingest = serde_json::parse_value(&lines[1]).unwrap();
        assert_eq!(ingest.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(ingest.get("doc").unwrap().as_u64(), Some(4));
    }
}
