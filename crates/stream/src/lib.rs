#![warn(missing_docs)]

//! # weber-stream
//!
//! Streaming resolution: incremental document ingestion against decision
//! criteria trained on a seed batch.
//!
//! The paper's pipeline is batch — it sees a whole block of documents,
//! fits every (similarity function × decision criterion) layer on the
//! training subset, selects the best graph and closes it transitively. A
//! crawler does not work that way: documents about an ambiguous name keep
//! arriving. This crate keeps the trained half of the pipeline and makes
//! the application half incremental:
//!
//! - per name, a **seed batch** with labels trains the decision model via
//!   the batch resolver's best-graph selection
//!   ([`weber_core::TrainedModel`]);
//! - each arriving document joins the name's block-local index
//!   (re-weighting earlier vectors — [`weber_simfun::block::PreparedBlock::push`]),
//!   is scored **only against its block's members** with the trained
//!   model, and is folded into the live partition
//!   ([`weber_graph::OnlinePartition`]) under a configurable
//!   [`AssignmentPolicy`];
//! - the whole thing is wrapped in a daemon ([`server`]) speaking NDJSON
//!   over stdin/stdout or TCP — concurrent connections over one shared
//!   resolver, with a bounded admission queue, a worker pool, and
//!   explicit `overloaded` backpressure ([`service`]);
//! - per-name state optionally **persists** to a state directory as
//!   atomic, versioned records (`persist`/`restore` ops, replay-based
//!   restore) and an LRU bound (`max_names`) **evicts** cold names to
//!   disk, restoring them transparently on their next touch
//!   ([`snapshot`], [`resolver`]);
//! - above the partition sits the **canonical entity layer**
//!   ([`weber_entity`]): the `entities` op materializes the current
//!   clusters into entities with stable IDs and per-mention provenance,
//!   `same_as` asserts/retracts reversible merge links between entity
//!   IDs, and `constraint` registers global rules (cannot-link,
//!   one-to-one, type boundaries) enforced by constraint-aware splitting
//!   at materialization. Entity tables persist next to the clustering
//!   records and restore on touch.
//!
//! Modules: [`config`] (resolver/service knobs), [`state`] (per-name
//! block + model + live partition), [`resolver`] (the thread-safe
//! multi-name façade), [`protocol`] (the NDJSON wire format), [`service`]
//! (queue + workers + ordered responses), [`server`] (stdio/TCP loops),
//! [`snapshot`] (state summaries + the on-disk record format), [`error`].

pub mod config;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod resolver;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod state;

pub use config::{AssignmentPolicy, StreamConfig};
pub use error::StreamError;
pub use metrics::StreamMetrics;
pub use protocol::ConstraintAction;
pub use resolver::{EntityTable, HealthReport, SeedDocument, SeedSummary, StreamResolver};
pub use server::{serve_listener, serve_stdio, serve_tcp, TcpOptions};
pub use service::StreamService;
pub use snapshot::{NameRecord, NameSnapshot, Snapshot, StoredDocument};
pub use state::{ClusterAssignment, NameState};
pub use weber_net::IoMode;
