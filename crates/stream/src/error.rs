//! Error type for the streaming resolution service.

use weber_core::CoreError;

/// Errors surfaced by the streaming resolver and service.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// An ingest referenced a name that was never seeded.
    UnknownName(String),
    /// A seed batch carried no documents (nothing to train on).
    EmptySeed(String),
    /// A seed batch's parallel arrays disagree in length (e.g. more
    /// features than labels). Rejected eagerly: in release builds a
    /// mismatched batch would otherwise mistrain or panic later.
    SeedMismatch {
        /// The name being seeded.
        name: String,
        /// Number of documents / feature rows supplied.
        docs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Training the decision model on the seed batch failed.
    Training(CoreError),
    /// A malformed protocol request (bad JSON, missing fields, unknown op).
    InvalidRequest(String),
    /// The admission queue is full; the request was rejected, not queued.
    Overloaded,
    /// Reading or writing persisted state failed (I/O, missing state
    /// directory, unparseable file).
    Persistence(String),
    /// A persisted state file was recognisably wrong — bad magic, wrong
    /// version, or a replay that did not reproduce the recorded partition —
    /// and was rejected rather than misread.
    SnapshotRejected(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnknownName(name) => {
                write!(f, "name '{name}' has not been seeded")
            }
            StreamError::EmptySeed(name) => {
                write!(f, "seed batch for '{name}' has no documents")
            }
            StreamError::SeedMismatch { name, docs, labels } => {
                write!(
                    f,
                    "seed batch for '{name}' is inconsistent: {docs} documents but {labels} labels"
                )
            }
            StreamError::Training(e) => write!(f, "training failed: {e}"),
            StreamError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            StreamError::Overloaded => write!(f, "overloaded"),
            StreamError::Persistence(msg) => write!(f, "persistence failed: {msg}"),
            StreamError::SnapshotRejected(msg) => write!(f, "state file rejected: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Training(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Training(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(StreamError::UnknownName("cohen".into())
            .to_string()
            .contains("cohen"));
        assert!(StreamError::Overloaded.to_string().contains("overloaded"));
        let mismatch = StreamError::SeedMismatch {
            name: "cohen".into(),
            docs: 4,
            labels: 3,
        };
        assert!(mismatch.to_string().contains('4'));
        assert!(mismatch.to_string().contains('3'));
        assert!(StreamError::SnapshotRejected("bad version".into())
            .to_string()
            .contains("rejected"));
        assert!(StreamError::Training(CoreError::NoFunctions)
            .to_string()
            .contains("similarity"));
    }

    #[test]
    fn core_errors_convert() {
        let e: StreamError = CoreError::NoCriteria.into();
        assert!(matches!(e, StreamError::Training(_)));
    }
}
