//! Error type for the streaming resolution service.

use weber_core::CoreError;

/// Errors surfaced by the streaming resolver and service.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A request line that is not valid JSON at all. Distinct from
    /// [`InvalidRequest`](Self::InvalidRequest) (well-formed JSON with a
    /// bad shape) so transports and routers can tell a framing problem
    /// from a semantic one.
    Parse(String),
    /// An ingest referenced a name that was never seeded.
    UnknownName(String),
    /// A seed batch carried no documents (nothing to train on).
    EmptySeed(String),
    /// A seed batch's parallel arrays disagree in length (e.g. more
    /// features than labels). Rejected eagerly: in release builds a
    /// mismatched batch would otherwise mistrain or panic later.
    SeedMismatch {
        /// The name being seeded.
        name: String,
        /// Number of documents / feature rows supplied.
        docs: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Training the decision model on the seed batch failed.
    Training(CoreError),
    /// A malformed protocol request (bad JSON, missing fields, unknown op).
    InvalidRequest(String),
    /// The admission queue is full; the request was rejected, not queued.
    Overloaded,
    /// Reading or writing persisted state failed (I/O, missing state
    /// directory, unparseable file).
    Persistence(String),
    /// A persisted state file was recognisably wrong — bad magic, wrong
    /// version, or a replay that did not reproduce the recorded partition —
    /// and was rejected rather than misread.
    SnapshotRejected(String),
    /// A `same_as` operation referenced an entity or link that does not
    /// exist in the name's canonical entity table.
    Entity(weber_entity::EntityError),
}

impl StreamError {
    /// A stable machine-readable token classifying the error, carried as
    /// the `"kind"` field of wire error responses. Routers and clients
    /// dispatch on this instead of parsing the human-readable message:
    /// `overloaded` means back off and retry, `parse`/`invalid-request`
    /// mean the request itself is wrong (retrying verbatim cannot help),
    /// `unknown-name` means the name was never seeded on this backend,
    /// and the rest are server-side state problems.
    pub fn kind(&self) -> &'static str {
        match self {
            StreamError::Parse(_) => "parse",
            StreamError::UnknownName(_) => "unknown-name",
            StreamError::EmptySeed(_) => "empty-seed",
            StreamError::SeedMismatch { .. } => "seed-mismatch",
            StreamError::Training(_) => "training",
            StreamError::InvalidRequest(_) => "invalid-request",
            StreamError::Overloaded => "overloaded",
            StreamError::Persistence(_) => "persistence",
            StreamError::SnapshotRejected(_) => "snapshot-rejected",
            // "unknown-entity" / "unknown-link"
            StreamError::Entity(e) => e.kind(),
        }
    }

    /// True when retrying the same request later can succeed without any
    /// change to the request (today: only backpressure).
    pub fn is_retryable(&self) -> bool {
        matches!(self, StreamError::Overloaded)
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Parse(msg) => write!(f, "parse: {msg}"),
            StreamError::UnknownName(name) => {
                write!(f, "name '{name}' has not been seeded")
            }
            StreamError::EmptySeed(name) => {
                write!(f, "seed batch for '{name}' has no documents")
            }
            StreamError::SeedMismatch { name, docs, labels } => {
                write!(
                    f,
                    "seed batch for '{name}' is inconsistent: {docs} documents but {labels} labels"
                )
            }
            StreamError::Training(e) => write!(f, "training failed: {e}"),
            StreamError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            StreamError::Overloaded => write!(f, "overloaded"),
            StreamError::Persistence(msg) => write!(f, "persistence failed: {msg}"),
            StreamError::SnapshotRejected(msg) => write!(f, "state file rejected: {msg}"),
            StreamError::Entity(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Training(e) => Some(e),
            StreamError::Entity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Training(e)
    }
}

impl From<weber_entity::EntityError> for StreamError {
    fn from(e: weber_entity::EntityError) -> Self {
        StreamError::Entity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(StreamError::UnknownName("cohen".into())
            .to_string()
            .contains("cohen"));
        assert!(StreamError::Overloaded.to_string().contains("overloaded"));
        let mismatch = StreamError::SeedMismatch {
            name: "cohen".into(),
            docs: 4,
            labels: 3,
        };
        assert!(mismatch.to_string().contains('4'));
        assert!(mismatch.to_string().contains('3'));
        assert!(StreamError::SnapshotRejected("bad version".into())
            .to_string()
            .contains("rejected"));
        assert!(StreamError::Training(CoreError::NoFunctions)
            .to_string()
            .contains("similarity"));
    }

    #[test]
    fn core_errors_convert() {
        let e: StreamError = CoreError::NoCriteria.into();
        assert!(matches!(e, StreamError::Training(_)));
    }

    #[test]
    fn parse_errors_use_the_documented_prefix() {
        let e = StreamError::Parse("unexpected 'g' at byte 0".into());
        assert!(e.to_string().starts_with("parse: "), "{e}");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn kinds_are_stable_tokens() {
        // The wire contract: kinds are kebab-case, never empty, and only
        // `overloaded` invites a verbatim retry.
        let all = [
            StreamError::Parse("x".into()),
            StreamError::UnknownName("n".into()),
            StreamError::EmptySeed("n".into()),
            StreamError::SeedMismatch {
                name: "n".into(),
                docs: 1,
                labels: 2,
            },
            StreamError::Training(CoreError::NoFunctions),
            StreamError::InvalidRequest("x".into()),
            StreamError::Overloaded,
            StreamError::Persistence("x".into()),
            StreamError::SnapshotRejected("x".into()),
            StreamError::Entity(weber_entity::EntityError::UnknownEntity(7)),
            StreamError::Entity(weber_entity::EntityError::UnknownLink(1, 2)),
        ];
        for e in &all {
            let kind = e.kind();
            assert!(!kind.is_empty());
            assert!(
                kind.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{kind}"
            );
            assert_eq!(e.is_retryable(), kind == "overloaded");
        }
    }
}
