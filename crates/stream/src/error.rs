//! Error type for the streaming resolution service.

use weber_core::CoreError;

/// Errors surfaced by the streaming resolver and service.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// An ingest referenced a name that was never seeded.
    UnknownName(String),
    /// A seed batch carried no documents (nothing to train on).
    EmptySeed(String),
    /// Training the decision model on the seed batch failed.
    Training(CoreError),
    /// A malformed protocol request (bad JSON, missing fields, unknown op).
    InvalidRequest(String),
    /// The admission queue is full; the request was rejected, not queued.
    Overloaded,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnknownName(name) => {
                write!(f, "name '{name}' has not been seeded")
            }
            StreamError::EmptySeed(name) => {
                write!(f, "seed batch for '{name}' has no documents")
            }
            StreamError::Training(e) => write!(f, "training failed: {e}"),
            StreamError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            StreamError::Overloaded => write!(f, "overloaded"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Training(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Training(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(StreamError::UnknownName("cohen".into())
            .to_string()
            .contains("cohen"));
        assert!(StreamError::Overloaded.to_string().contains("overloaded"));
        assert!(StreamError::Training(CoreError::NoFunctions)
            .to_string()
            .contains("similarity"));
    }

    #[test]
    fn core_errors_convert() {
        let e: StreamError = CoreError::NoCriteria.into();
        assert!(matches!(e, StreamError::Training(_)));
    }
}
