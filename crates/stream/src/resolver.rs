//! The streaming resolver: thread-safe per-name state behind one façade,
//! with optional disk persistence and LRU eviction of cold names.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use weber_core::resolver::Resolver;
use weber_entity::{Constraint, EntityStore, MaterializeReport, MentionOrigin, TableState};
use weber_extract::gazetteer::Gazetteer;
use weber_extract::pipeline::Extractor;
use weber_graph::Partition;

use crate::config::StreamConfig;
use crate::error::StreamError;
use crate::metrics::StreamMetrics;
use crate::snapshot::{
    self, NameRecord, NameSnapshot, Snapshot, StoredDocument, STATE_FILE_MAGIC, STATE_FILE_VERSION,
};
use crate::state::{ClusterAssignment, NameState};

/// What one entity materialization pass reads out of a name's state:
/// the live clusters, each doc's origin, and the doc count.
type ClusterView = (Vec<Vec<usize>>, Vec<MentionOrigin>, usize);

/// One labelled document of a seed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedDocument {
    /// Page text.
    pub text: String,
    /// Page URL, when known.
    pub url: Option<String>,
    /// Entity label within the batch (documents with equal labels are the
    /// same person).
    pub label: u32,
}

/// A cheap liveness read-out: what the `health` protocol op reports.
/// Everything here comes from atomics or a brief read lock — no per-name
/// state lock is taken, so a busy resolver still answers instantly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Time since the resolver was constructed.
    pub uptime: std::time::Duration,
    /// Names currently live in memory.
    pub names: usize,
    /// Requests sitting in the service's admission queues right now.
    pub queue_depth: i64,
    /// Configured worker threads.
    pub workers: usize,
    /// Configured per-worker admission-queue capacity.
    pub queue_capacity: usize,
}

/// What seeding a name produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSummary {
    /// Documents trained on.
    pub docs: usize,
    /// Clusters in the initial partition.
    pub clusters: usize,
    /// Selected similarity function.
    pub function: String,
    /// Selected decision criterion label.
    pub criterion: String,
    /// Training accuracy of the selected layer.
    pub accuracy: f64,
}

/// A read-out of one name's canonical entity table, produced by one
/// materialization pass: what the `entities`/`same_as`/`constraint`
/// protocol ops put on the wire.
#[derive(Debug, Clone)]
pub struct EntityTable {
    /// The ambiguous name.
    pub name: String,
    /// Documents in the name's block at materialization time.
    pub docs: usize,
    /// The live entities (stable IDs, mentions, provenance).
    pub entities: Vec<weber_entity::Entity>,
    /// Active `SAME_AS` links.
    pub links: Vec<weber_entity::SameAsLink>,
    /// Registered constraints.
    pub constraints: usize,
    /// What the materialization pass did.
    pub report: MaterializeReport,
}

/// A name's live state plus its LRU stamp.
struct NameEntry {
    state: Mutex<NameState>,
    /// Logical time of the last touch (monotone ticket from the resolver's
    /// clock); the eviction victim is the entry with the smallest stamp.
    touched: AtomicU64,
}

impl NameEntry {
    fn new(state: NameState, stamp: u64) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(state),
            touched: AtomicU64::new(stamp),
        })
    }
}

/// A thread-safe streaming resolver over many ambiguous names.
///
/// Each name is seeded once with a labelled batch — which trains that
/// name's decision model via the batch resolver's best-graph selection —
/// and then grows one document at a time via [`ingest`](Self::ingest).
/// Names are independently locked, so ingests for different names run in
/// parallel; the feature extractor is shared (its vocabulary is global).
///
/// # Persistence and eviction
///
/// With a state directory configured ([`StreamConfig::with_state_dir`]),
/// per-name state survives restarts: [`persist_all`](Self::persist_all)
/// writes one atomic versioned record per name, and a later
/// [`restore_all`](Self::restore_all) — or any touch of a name that is on
/// disk but not in memory — replays it back. With
/// [`StreamConfig::with_max_names`] additionally set, the resolver keeps
/// at most that many names live, persisting-then-dropping the
/// least-recently-touched when the bound is exceeded; evicted names
/// restore transparently on their next touch.
///
/// Restore *replays* the recorded documents through the deterministic
/// seed/ingest pipeline rather than deserialising model internals (term
/// ids are interned in a process-global vocabulary, so raw vectors would
/// not survive a restart), then verifies the replayed partition and model
/// selection against the record; any divergence — config drift, a stale
/// or foreign file — rejects the file with
/// [`StreamError::SnapshotRejected`].
///
/// # Locking discipline
///
/// Two lock levels: the names map (`RwLock`) and each entry's state
/// (`Mutex`). No path holds a *map guard* while blocking on a state lock
/// (handles are cloned out first), so holding a state lock while briefly
/// taking the map lock — which the stale-entry re-check and the evictor
/// both do — cannot deadlock.
pub struct StreamResolver {
    extractor: Extractor,
    resolver: Resolver,
    config: StreamConfig,
    names: RwLock<HashMap<String, Arc<NameEntry>>>,
    /// Monotone source of LRU stamps.
    clock: AtomicU64,
    /// Construction time; the `health` op reports the elapsed span.
    started: std::time::Instant,
    /// Counters, gauges and latency histograms over this resolver's
    /// traffic; every block shares `metrics.cache` so similarity-cache
    /// counts survive eviction and re-seeding.
    metrics: StreamMetrics,
    /// Per-name canonical entity tables, built lazily on the first entity
    /// op that touches a name (restored from disk when a record exists).
    /// One mutex over the map: entity ops are orders of magnitude rarer
    /// than ingests, and the per-name state lock is never held while this
    /// one is taken (clusters are snapshotted out first), so the two lock
    /// levels cannot deadlock.
    entity_tables: Mutex<HashMap<String, EntityStore>>,
}

impl std::fmt::Debug for StreamResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamResolver")
            .field("config", &self.config)
            .field("names", &self.names().len())
            .finish()
    }
}

impl StreamResolver {
    /// Create a resolver over the given gazetteer (the dictionary feature
    /// extraction recognises concepts and entities with).
    ///
    /// Rejects a configuration with `max_names` but no `state_dir`:
    /// eviction persists state before dropping it, and without a state
    /// directory evicted names would simply be lost.
    pub fn new(config: StreamConfig, gazetteer: &Gazetteer) -> Result<Self, StreamError> {
        if config.max_names.is_some() && config.state_dir.is_none() {
            return Err(StreamError::Persistence(
                "max_names (eviction) requires a state_dir to evict into".into(),
            ));
        }
        let resolver = Resolver::new(config.resolver.clone())?;
        Ok(Self {
            extractor: Extractor::new(gazetteer),
            resolver,
            config,
            names: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            started: std::time::Instant::now(),
            metrics: StreamMetrics::new(),
            entity_tables: Mutex::new(HashMap::new()),
        })
    }

    /// Time since this resolver was constructed.
    pub fn uptime(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// The cheap liveness read-out behind the `health` protocol op. Does
    /// not count as a touch for eviction purposes and takes no per-name
    /// lock.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            uptime: self.uptime(),
            names: self.names.read().len(),
            queue_depth: self.metrics.queue_depth.get(),
            workers: self.config.workers,
            queue_capacity: self.config.queue_capacity,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The resolver's metrics bundle (read by the `metrics` protocol op
    /// and the `--metrics-file` dumper).
    pub fn metrics(&self) -> &StreamMetrics {
        &self.metrics
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Seed (or re-seed, replacing all state for) one name from a labelled
    /// batch. Trains the name's decision model and builds its initial
    /// partition.
    pub fn seed(&self, name: &str, docs: &[SeedDocument]) -> Result<SeedSummary, StreamError> {
        let start = std::time::Instant::now();
        let documents: Vec<StoredDocument> = docs
            .iter()
            .map(|d| StoredDocument {
                text: d.text.clone(),
                url: d.url.clone(),
            })
            .collect();
        let features = docs
            .iter()
            .map(|d| self.extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        let labels: Vec<u32> = docs.iter().map(|d| d.label).collect();
        let state = NameState::seed_observed(
            name,
            documents,
            features,
            &labels,
            &self.resolver,
            self.config.scheme,
            self.config.assignment,
            Some(Arc::clone(&self.metrics.cache)),
        )?;
        let summary = SeedSummary {
            docs: state.len(),
            clusters: state.cluster_count(),
            function: state.model().function_name().to_string(),
            criterion: state.model().criterion().label(),
            accuracy: state.model().accuracy,
        };
        self.names
            .write()
            .insert(name.to_string(), NameEntry::new(state, self.tick()));
        self.maybe_evict(name)?;
        self.metrics.seeds.inc();
        self.metrics.seed_us.record_since(start);
        Ok(summary)
    }

    /// Ingest one document for a seeded name, returning where it landed.
    ///
    /// If the name's state was evicted to disk it is transparently
    /// restored first. The apply is raced-checked: locking the state and
    /// *then* re-checking the map entry guarantees the mutation lands in
    /// the state the map currently serves — a concurrent re-seed or
    /// eviction between lookup and lock makes this attempt retry against
    /// the fresh entry instead of mutating an orphan.
    pub fn ingest(
        &self,
        name: &str,
        text: &str,
        url: Option<&str>,
    ) -> Result<ClusterAssignment, StreamError> {
        // Extraction happens outside any lock (the extractor is
        // thread-safe); only block growth and scoring are serialised.
        let start = std::time::Instant::now();
        let features = self.extractor.extract(text, url);
        let document = StoredDocument {
            text: text.to_string(),
            url: url.map(str::to_string),
        };
        loop {
            let entry = self.lookup_or_restore(name)?;
            if let Some(assignment) = self.try_apply(name, &entry, |state| {
                state.ingest(document.clone(), features.clone())
            }) {
                self.metrics.ingests.inc();
                if assignment.retrained {
                    self.metrics.retrains.inc();
                }
                self.metrics.ingest_us.record_since(start);
                return Ok(assignment);
            }
            // Lost the race (entry replaced or evicted after lookup):
            // loop and apply to whatever the map serves now.
        }
    }

    /// Lock `entry`'s state and, *under that lock*, re-check that the map
    /// still serves this exact entry for `name`. Applies `f` and returns
    /// its result only if so; `None` means the caller raced a re-seed or
    /// eviction and must retry. Because every mutation goes through this
    /// check, an evictor that observes the entry current while holding its
    /// state lock knows the state can no longer change behind its back.
    fn try_apply<T>(
        &self,
        name: &str,
        entry: &Arc<NameEntry>,
        f: impl FnOnce(&mut NameState) -> T,
    ) -> Option<T> {
        let mut state = entry.state.lock();
        let is_current = matches!(
            self.names.read().get(name), Some(current) if Arc::ptr_eq(current, entry)
        );
        if !is_current {
            return None;
        }
        entry.touched.store(self.tick(), Ordering::Relaxed);
        Some(f(&mut state))
    }

    /// The live entry for `name`, restoring it from disk on a miss when a
    /// state directory is configured.
    fn lookup_or_restore(&self, name: &str) -> Result<Arc<NameEntry>, StreamError> {
        if let Some(entry) = self.names.read().get(name).cloned() {
            entry.touched.store(self.tick(), Ordering::Relaxed);
            return Ok(entry);
        }
        let Some(dir) = self.config.state_dir.as_deref() else {
            return Err(StreamError::UnknownName(name.to_string()));
        };
        let Some(record) = snapshot::read_record(dir, name)? else {
            return Err(StreamError::UnknownName(name.to_string()));
        };
        let state = self.replay(&record)?;
        self.metrics.restores.inc();
        let restored = NameEntry::new(state, self.tick());
        let entry = Arc::clone(
            self.names
                .write()
                .entry(name.to_string())
                // A concurrent seed/restore won the insert: keep theirs.
                .or_insert(restored),
        );
        self.maybe_evict(name)?;
        Ok(entry)
    }

    /// Rebuild a name's state from its persisted record by replaying the
    /// recorded documents through the deterministic seed/ingest pipeline,
    /// then verify the replay reproduced the recorded partition and model
    /// selection exactly. The resolution pipeline is deterministic given
    /// the same documents and configuration, so a divergence means the
    /// record was written under a different configuration (or corrupted)
    /// and must not be served.
    fn replay(&self, record: &NameRecord) -> Result<NameState, StreamError> {
        let seed_count = record.seed_labels.len();
        let seed_docs: Vec<StoredDocument> = record.documents[..seed_count].to_vec();
        let features = seed_docs
            .iter()
            .map(|d| self.extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        let mut state = NameState::seed_observed(
            &record.name,
            seed_docs,
            features,
            &record.seed_labels,
            &self.resolver,
            self.config.scheme,
            self.config.assignment,
            Some(Arc::clone(&self.metrics.cache)),
        )?;
        for doc in &record.documents[seed_count..] {
            let features = self.extractor.extract(&doc.text, doc.url.as_deref());
            state.ingest(doc.clone(), features);
        }
        if state.partition().labels() != record.partition.as_slice() {
            return Err(StreamError::SnapshotRejected(format!(
                "replayed partition for '{}' diverges from the recorded one \
                 (was the record written under a different configuration?)",
                record.name
            )));
        }
        let function = state.model().function_name();
        let criterion = state.model().criterion().label();
        if function != record.function || criterion != record.criterion {
            return Err(StreamError::SnapshotRejected(format!(
                "replayed model for '{}' selected {function}/{criterion} but the \
                 record expects {}/{}",
                record.name, record.function, record.criterion
            )));
        }
        Ok(state)
    }

    /// Write one name's state to the configured directory.
    fn persist_state(&self, name: &str, state: &NameState) -> Result<(), StreamError> {
        let dir = self
            .config
            .state_dir
            .as_deref()
            .ok_or_else(|| StreamError::Persistence("no state directory configured".into()))?;
        let record = NameRecord {
            magic: STATE_FILE_MAGIC.to_string(),
            version: STATE_FILE_VERSION,
            name: name.to_string(),
            seed_labels: state.seed_labels().to_vec(),
            documents: state.documents().to_vec(),
            function: state.model().function_name().to_string(),
            criterion: state.model().criterion().label(),
            partition: state.partition().labels().to_vec(),
        };
        snapshot::write_record(dir, &record)?;
        self.metrics.persists.inc();
        Ok(())
    }

    /// Persist every live name to the state directory; returns how many
    /// records were written. Entries replaced concurrently (re-seeded
    /// mid-walk) are skipped — the replacement is newer than anything we
    /// could write for them.
    pub fn persist_all(&self) -> Result<usize, StreamError> {
        let mut written = 0;
        for name in self.names() {
            let Some(entry) = self.names.read().get(&name).cloned() else {
                continue;
            };
            let state = entry.state.lock();
            let is_current = matches!(
                self.names.read().get(&name), Some(current) if Arc::ptr_eq(current, &entry)
            );
            if !is_current {
                continue;
            }
            self.persist_state(&name, &state)?;
            written += 1;
        }
        // Entity tables ride along: one versioned record per touched
        // table, next to the name's clustering record (not counted in
        // the returned name count).
        if let Some(dir) = self.config.state_dir.as_deref() {
            let tables = self.entity_tables.lock();
            for store in tables.values() {
                snapshot::write_entity_record(dir, &TableState::capture(store))?;
            }
        }
        Ok(written)
    }

    /// Restore every name recorded in the state directory that is not
    /// already live; returns how many were restored. A resolver without a
    /// state directory restores nothing.
    pub fn restore_all(&self) -> Result<usize, StreamError> {
        let Some(dir) = self.config.state_dir.as_deref() else {
            return Ok(0);
        };
        let mut restored = 0;
        for name in snapshot::stored_names(dir)? {
            if self.names.read().contains_key(&name) {
                continue;
            }
            let Some(record) = snapshot::read_record(dir, &name)? else {
                continue;
            };
            let state = self.replay(&record)?;
            self.names
                .write()
                .entry(name.clone())
                .or_insert_with(|| NameEntry::new(state, self.tick()));
            self.metrics.restores.inc();
            restored += 1;
            self.maybe_evict(&name)?;
        }
        Ok(restored)
    }

    /// Enforce the `max_names` bound: while the map is over it, persist
    /// and drop the least-recently-touched name (never `protect`, the name
    /// that was just touched).
    ///
    /// Ordering is persist-*then*-remove, both while holding the victim's
    /// state lock: the lock plus the currency re-check mean no mutation
    /// can land between what the record captures and the removal, and any
    /// toucher that misses the map afterwards restores from a file that is
    /// already complete.
    fn maybe_evict(&self, protect: &str) -> Result<(), StreamError> {
        let Some(max_names) = self.config.max_names else {
            return Ok(());
        };
        loop {
            let victim = {
                let map = self.names.read();
                if map.len() <= max_names {
                    return Ok(());
                }
                map.iter()
                    .filter(|(name, _)| name.as_str() != protect)
                    .min_by_key(|(_, entry)| entry.touched.load(Ordering::Relaxed))
                    .map(|(name, entry)| (name.clone(), Arc::clone(entry)))
            };
            let Some((name, entry)) = victim else {
                // Only the protected name is live; nothing evictable.
                return Ok(());
            };
            let state = entry.state.lock();
            let is_current = matches!(
                self.names.read().get(&name), Some(current) if Arc::ptr_eq(current, &entry)
            );
            if !is_current {
                // Re-seeded while we were choosing it; pick a new victim.
                continue;
            }
            // With the state lock held and the entry current, no mutation
            // can slip in (every apply re-checks currency under this very
            // lock), so the record is complete when the entry disappears.
            self.persist_state(&name, &state)?;
            let mut map = self.names.write();
            if let Some(current) = map.get(&name) {
                if Arc::ptr_eq(current, &entry) {
                    map.remove(&name);
                    self.metrics.evictions.inc();
                }
            }
        }
    }

    /// The live partition of a seeded name (restored from disk first if it
    /// was evicted); `None` when the name is unknown or unreadable.
    pub fn partition(&self, name: &str) -> Option<Partition> {
        let entry = self.lookup_or_restore(name).ok()?;
        let state = entry.state.lock();
        Some(state.partition())
    }

    /// Run a read-only closure against a name's live state (restored from
    /// disk first if it was evicted). Errors when the name is unknown or
    /// its stored record is unreadable.
    pub fn with_state<R>(
        &self,
        name: &str,
        f: impl FnOnce(&NameState) -> R,
    ) -> Result<R, StreamError> {
        let entry = self.lookup_or_restore(name)?;
        let state = entry.state.lock();
        Ok(f(&state))
    }

    /// One name's current summary — the per-name read behind the
    /// `resolve` protocol op (restored from disk first if it was
    /// evicted). Errors when the name is unknown or its stored record is
    /// unreadable.
    pub fn resolve_name(&self, name: &str) -> Result<NameSnapshot, StreamError> {
        self.with_state(name, |state| NameSnapshot {
            name: name.to_string(),
            docs: state.len(),
            clusters: state.cluster_count(),
            function: state.model().function_name().to_string(),
            criterion: state.model().criterion().label(),
            accuracy: state.model().accuracy,
            members: state.partition().clusters(),
        })
    }

    /// Seeded names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.names.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Summaries of every seeded name, sorted by name. Does not count as a
    /// touch for eviction purposes.
    pub fn snapshot(&self) -> Snapshot {
        let handles: Vec<(String, Arc<NameEntry>)> = {
            let map = self.names.read();
            let mut v: Vec<_> = map
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let names = handles
            .into_iter()
            .map(|(name, entry)| {
                let state = entry.state.lock();
                NameSnapshot {
                    name,
                    docs: state.len(),
                    clusters: state.cluster_count(),
                    function: state.model().function_name().to_string(),
                    criterion: state.model().criterion().label(),
                    accuracy: state.model().accuracy,
                    // The snapshot keeps its summary shape; the per-name
                    // `resolve` read carries the cluster members.
                    members: Vec::new(),
                }
            })
            .collect();
        Snapshot { names }
    }

    /// The clusters and per-mention origins one materialization pass
    /// needs, snapshotted under the name's state lock (and released
    /// before the entity-table lock is taken).
    fn cluster_view(&self, name: &str) -> Result<ClusterView, StreamError> {
        self.with_state(name, |state| {
            let clusters = state.partition().clusters();
            let seeds = state.seed_labels();
            let origins = (0..state.len())
                .map(|doc| match seeds.get(doc) {
                    Some(&label) => MentionOrigin::Seed { label },
                    None => MentionOrigin::Ingest,
                })
                .collect();
            (clusters, origins, state.len())
        })
    }

    /// The in-memory entity store for `name`, created on first touch —
    /// restored from a persisted `.entity.json` record when one exists.
    /// The caller holds the table-map lock.
    fn entity_store<'a>(
        &self,
        tables: &'a mut HashMap<String, EntityStore>,
        name: &str,
    ) -> Result<&'a mut EntityStore, StreamError> {
        if !tables.contains_key(name) {
            let store = match self.config.state_dir.as_deref() {
                Some(dir) => match snapshot::read_entity_record(dir, name)? {
                    Some(record) => record.restore().map_err(StreamError::SnapshotRejected)?,
                    None => EntityStore::new(name),
                },
                None => EntityStore::new(name),
            };
            tables.insert(name.to_string(), store);
        }
        Ok(tables.get_mut(name).expect("just inserted"))
    }

    /// Run one materialization pass and read the resulting table out.
    fn materialize_pass(
        &self,
        store: &mut EntityStore,
        clusters: &[Vec<usize>],
        origins: &[MentionOrigin],
        docs: usize,
    ) -> EntityTable {
        let start = std::time::Instant::now();
        let report = store.materialize(clusters, origins);
        self.metrics.entity_materializations.inc();
        self.metrics.entity_materialize_us.record_since(start);
        self.metrics.entity_splits.add(report.splits);
        self.metrics
            .entity_constraint_violations
            .add(report.violations);
        EntityTable {
            name: store.name().to_string(),
            docs,
            entities: store.entities().to_vec(),
            links: store.links().to_vec(),
            constraints: store.constraints().len(),
            report,
        }
    }

    /// Materialize and read one name's canonical entity table (the
    /// `entities` protocol op). The name's state is restored from disk
    /// first if it was evicted; the entity table is restored from its own
    /// record on first touch.
    pub fn entities(&self, name: &str) -> Result<EntityTable, StreamError> {
        let (clusters, origins, docs) = self.cluster_view(name)?;
        let mut tables = self.entity_tables.lock();
        let store = self.entity_store(&mut tables, name)?;
        Ok(self.materialize_pass(store, &clusters, &origins, docs))
    }

    /// Materialize every live name's entity table, sorted by name (the
    /// name-less `entities` op). A name evicted mid-walk is skipped.
    pub fn entities_all(&self) -> Result<Vec<EntityTable>, StreamError> {
        let mut out = Vec::new();
        for name in self.names() {
            match self.entities(&name) {
                Ok(table) => out.push(table),
                Err(StreamError::UnknownName(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Assert (or retract) a `SAME_AS` link between two canonical entity
    /// IDs of `name`, then re-materialize and return the updated table.
    /// The table is brought up to date with the current partition *before*
    /// the IDs are validated, so a link can reference entities created by
    /// ingests since the last entity op.
    pub fn same_as(
        &self,
        name: &str,
        a: u64,
        b: u64,
        retract: bool,
    ) -> Result<EntityTable, StreamError> {
        let (clusters, origins, docs) = self.cluster_view(name)?;
        let mut tables = self.entity_tables.lock();
        let store = self.entity_store(&mut tables, name)?;
        self.materialize_pass(store, &clusters, &origins, docs);
        if retract {
            store.retract_link(a, b)?;
        } else {
            store.assert_link(a, b)?;
        }
        Ok(self.materialize_pass(store, &clusters, &origins, docs))
    }

    /// Register one constraint for `name` (or clear them all), then
    /// re-materialize and return the updated table plus whether the
    /// constraint set grew (`false` for a duplicate or a clear).
    pub fn constrain(
        &self,
        name: &str,
        action: &crate::protocol::ConstraintAction,
    ) -> Result<(bool, EntityTable), StreamError> {
        let (clusters, origins, docs) = self.cluster_view(name)?;
        let mut tables = self.entity_tables.lock();
        let store = self.entity_store(&mut tables, name)?;
        let added = match action {
            crate::protocol::ConstraintAction::Add(constraint) => {
                store.add_constraint(constraint.clone())
            }
            crate::protocol::ConstraintAction::Clear => {
                store.clear_constraints();
                false
            }
        };
        Ok((
            added,
            self.materialize_pass(store, &clusters, &origins, docs),
        ))
    }

    /// Register a constraint directly (embedders and tests; the wire path
    /// goes through [`constrain`](Self::constrain)).
    pub fn add_constraint(&self, name: &str, constraint: Constraint) -> Result<bool, StreamError> {
        let mut tables = self.entity_tables.lock();
        let store = self.entity_store(&mut tables, name)?;
        Ok(store.add_constraint(constraint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gazetteer() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        g
    }

    fn seed_docs() -> Vec<SeedDocument> {
        [
            ("databases are fun and databases are important", 0),
            ("databases are hard but databases pay well", 0),
            ("gardening tips for growing roses", 1),
            ("gardening advice on pruning roses", 1),
        ]
        .iter()
        .map(|&(t, l)| SeedDocument {
            text: t.to_string(),
            url: None,
            label: l,
        })
        .collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "weber_resolver_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn seed_then_ingest() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        let summary = r.seed("cohen", &seed_docs()).unwrap();
        assert_eq!(summary.docs, 4);
        assert!(!summary.function.is_empty());
        let a = r
            .ingest("cohen", "databases are fun and databases are hard", None)
            .unwrap();
        assert_eq!(a.doc, 4);
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
    }

    #[test]
    fn unknown_name_is_rejected() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        assert!(matches!(
            r.ingest("nobody", "text", None),
            Err(StreamError::UnknownName(_))
        ));
        assert!(r.partition("nobody").is_none());
    }

    #[test]
    fn names_are_independent() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        r.seed("smith", &seed_docs()).unwrap();
        r.ingest("cohen", "databases again", None).unwrap();
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
        assert_eq!(r.partition("smith").unwrap().len(), 4);
        assert_eq!(r.names(), vec!["cohen".to_string(), "smith".to_string()]);
    }

    #[test]
    fn resolve_name_reports_the_live_summary() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        r.ingest("cohen", "databases once more", None).unwrap();
        let summary = r.resolve_name("cohen").unwrap();
        assert_eq!(summary.name, "cohen");
        assert_eq!(summary.docs, 5);
        assert!(summary.clusters >= 1);
        assert!(!summary.function.is_empty());
        assert!(matches!(
            r.resolve_name("nobody"),
            Err(StreamError::UnknownName(_))
        ));
    }

    #[test]
    fn snapshot_covers_every_name() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        r.seed("smith", &seed_docs()).unwrap();
        let s = r.snapshot();
        assert_eq!(s.names.len(), 2);
        assert_eq!(s.names[0].name, "cohen");
        assert_eq!(s.total_docs(), 8);
    }

    #[test]
    fn concurrent_ingests_across_names() {
        let r = Arc::new(StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap());
        r.seed("cohen", &seed_docs()).unwrap();
        r.seed("smith", &seed_docs()).unwrap();
        std::thread::scope(|scope| {
            for name in ["cohen", "smith"] {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..5 {
                        r.ingest(name, &format!("databases text number {i}"), None)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(r.partition("cohen").unwrap().len(), 9);
        assert_eq!(r.partition("smith").unwrap().len(), 9);
    }

    /// White-box regression for the stale-state ingest race: an apply
    /// against an entry the map no longer serves must be refused, leaving
    /// the orphaned state untouched.
    #[test]
    fn apply_to_replaced_entry_is_refused() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        // Simulate the racer: grab the entry handle the way ingest does...
        let orphan = r.names.read().get("cohen").cloned().unwrap();
        // ...then a concurrent seed replaces the map entry.
        r.seed("cohen", &seed_docs()).unwrap();
        let text = "databases between lookup and lock";
        let features = r.extractor.extract(text, None);
        let refused = r.try_apply("cohen", &orphan, |state| {
            state.ingest(
                StoredDocument {
                    text: text.to_string(),
                    url: None,
                },
                features.clone(),
            )
        });
        assert!(
            refused.is_none(),
            "apply must not land in an orphaned state"
        );
        assert_eq!(orphan.state.lock().len(), 4, "orphan must be untouched");
        // The public path retries and lands in the current entry.
        r.ingest("cohen", text, None).unwrap();
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
    }

    /// Stress the seed/ingest interleaving on one name: every ingest must
    /// either land in the state the map serves or be retried — never
    /// applied to an orphan — so after the dust settles the live document
    /// count is exactly seed + ingests-since-last-seed.
    #[test]
    fn interleaved_seed_and_ingest_on_one_name() {
        let r = Arc::new(StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap());
        r.seed("cohen", &seed_docs()).unwrap();
        let ingested = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let reseeder = {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..5 {
                        r.seed("cohen", &seed_docs()).unwrap();
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                })
            };
            for _ in 0..2 {
                let r = Arc::clone(&r);
                let ingested = Arc::clone(&ingested);
                scope.spawn(move || {
                    for i in 0..10 {
                        r.ingest("cohen", &format!("databases stress {i}"), None)
                            .unwrap();
                        ingested.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            reseeder.join().unwrap();
        });
        assert_eq!(ingested.load(Ordering::Relaxed), 20);
        // Whatever interleaving happened, the live state is consistent:
        // 4 seed docs plus however many ingests landed after the final
        // re-seed, which is at most 20.
        let live = r.partition("cohen").unwrap().len();
        assert!((4..=24).contains(&live), "live count {live} out of range");
        assert_eq!(r.snapshot().names.len(), 1);
    }

    #[test]
    fn health_reports_uptime_and_names() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        let h = r.health();
        assert_eq!(h.names, 1);
        assert_eq!(h.queue_depth, 0);
        assert!(h.workers >= 1 && h.queue_capacity >= 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(r.health().uptime > h.uptime);
    }

    #[test]
    fn eviction_requires_a_state_dir() {
        let config = StreamConfig::default().with_max_names(2);
        assert!(matches!(
            StreamResolver::new(config, &gazetteer()),
            Err(StreamError::Persistence(_))
        ));
    }

    #[test]
    fn persist_restore_roundtrip_reproduces_the_partition() {
        let dir = temp_dir("roundtrip");
        let config = StreamConfig::default().with_state_dir(&dir);
        let before = {
            let r = StreamResolver::new(config.clone(), &gazetteer()).unwrap();
            r.seed("cohen", &seed_docs()).unwrap();
            r.seed("smith", &seed_docs()).unwrap();
            for i in 0..3 {
                r.ingest(
                    "cohen",
                    &format!("databases are important number {i}"),
                    None,
                )
                .unwrap();
            }
            assert_eq!(r.persist_all().unwrap(), 2);
            (r.partition("cohen").unwrap(), r.partition("smith").unwrap())
        };
        // A fresh resolver (fresh process stand-in: nothing in memory).
        let r = StreamResolver::new(config, &gazetteer()).unwrap();
        assert_eq!(r.restore_all().unwrap(), 2);
        assert_eq!(r.partition("cohen").unwrap(), before.0);
        assert_eq!(r.partition("smith").unwrap(), before.1);
        assert_eq!(r.snapshot().total_docs(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn touching_a_name_on_disk_restores_it_transparently() {
        let dir = temp_dir("lazy");
        let config = StreamConfig::default().with_state_dir(&dir);
        {
            let r = StreamResolver::new(config.clone(), &gazetteer()).unwrap();
            r.seed("cohen", &seed_docs()).unwrap();
            r.persist_all().unwrap();
        }
        let r = StreamResolver::new(config, &gazetteer()).unwrap();
        assert!(r.names().is_empty());
        // No restore_all: the first ingest touch restores from disk.
        let a = r.ingest("cohen", "databases once more", None).unwrap();
        assert_eq!(a.doc, 4);
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_names_are_evicted_and_restored_on_touch() {
        let dir = temp_dir("evict");
        let config = StreamConfig::default()
            .with_state_dir(&dir)
            .with_max_names(1);
        let r = StreamResolver::new(config, &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        // Seeding a second name evicts the colder first one to disk.
        r.seed("smith", &seed_docs()).unwrap();
        assert_eq!(r.names(), vec!["smith".to_string()]);
        assert!(snapshot::read_record(&dir, "cohen").unwrap().is_some());
        // Touching the evicted name restores it (and evicts the other).
        let a = r.ingest("cohen", "databases resurface", None).unwrap();
        assert_eq!(a.doc, 4);
        assert_eq!(r.names(), vec!["cohen".to_string()]);
        assert!(snapshot::read_record(&dir, "smith").unwrap().is_some());
        // The evicted-and-restored partition kept every document.
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_name_carries_cluster_members() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        let summary = r.resolve_name("cohen").unwrap();
        assert_eq!(summary.members.len(), summary.clusters);
        let mut all: Vec<usize> = summary.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![0, 1, 2, 3],
            "every document in exactly one cluster"
        );
        // The summary snapshot keeps its light shape.
        assert!(r.snapshot().names[0].members.is_empty());
    }

    #[test]
    fn entities_materialize_with_stable_ids_and_seed_provenance() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        let table = r.entities("cohen").unwrap();
        assert_eq!(table.docs, 4);
        assert_eq!(table.entities.len(), 2);
        assert_eq!(table.report.fresh_ids, 2);
        let seeded: Vec<_> = table.entities[0]
            .provenance
            .iter()
            .map(|p| p.origin)
            .collect();
        assert!(seeded
            .iter()
            .all(|o| matches!(o, MentionOrigin::Seed { .. })));
        // A second pass over an unchanged partition keeps every ID.
        let again = r.entities("cohen").unwrap();
        assert_eq!(again.report.retained_ids, 2);
        assert_eq!(again.report.fresh_ids, 0);
        assert_eq!(
            again.entities.iter().map(|e| e.id).collect::<Vec<_>>(),
            table.entities.iter().map(|e| e.id).collect::<Vec<_>>()
        );
        assert!(matches!(
            r.entities("nobody"),
            Err(StreamError::UnknownName(_))
        ));
    }

    #[test]
    fn same_as_and_constraints_round_trip_through_the_resolver() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        let table = r.entities("cohen").unwrap();
        let (a, b) = (table.entities[0].id, table.entities[1].id);
        // The two seed clusters carry different labels, so the union is
        // vetoed by the implicit cannot-link — but the link stays.
        let vetoed = r.same_as("cohen", a, b, false).unwrap();
        assert_eq!(vetoed.entities.len(), 2);
        assert_eq!(vetoed.report.vetoed_links, 1);
        assert_eq!(vetoed.links.len(), 1);
        let back = r.same_as("cohen", a, b, true).unwrap();
        assert!(back.links.is_empty());
        assert!(matches!(
            r.same_as("cohen", a, 99, false),
            Err(StreamError::Entity(
                weber_entity::EntityError::UnknownEntity(99)
            ))
        ));
        // An explicit constraint splits a seed cluster.
        let (added, constrained) = r
            .constrain(
                "cohen",
                &crate::protocol::ConstraintAction::Add(Constraint::CannotLink { a: 0, b: 1 }),
            )
            .unwrap();
        assert!(added);
        assert_eq!(constrained.constraints, 1);
        assert!(constrained.entities.len() >= 3);
        assert!(constrained.report.splits >= 1);
        let (added_again, _) = r
            .constrain(
                "cohen",
                &crate::protocol::ConstraintAction::Add(Constraint::CannotLink { a: 1, b: 0 }),
            )
            .unwrap();
        assert!(!added_again, "duplicates are ignored");
        let (_, cleared) = r
            .constrain("cohen", &crate::protocol::ConstraintAction::Clear)
            .unwrap();
        assert_eq!(cleared.constraints, 0);
        assert_eq!(cleared.entities.len(), 2);
    }

    #[test]
    fn entity_tables_persist_and_restore_on_touch() {
        let dir = temp_dir("entity_roundtrip");
        let config = StreamConfig::default().with_state_dir(&dir);
        let (ids_before, links_before) = {
            let r = StreamResolver::new(config.clone(), &gazetteer()).unwrap();
            r.seed("cohen", &seed_docs()).unwrap();
            r.entities("cohen").unwrap();
            r.add_constraint("cohen", Constraint::CannotLink { a: 0, b: 2 })
                .unwrap();
            let table = r.entities("cohen").unwrap();
            r.persist_all().unwrap();
            (
                table.entities.iter().map(|e| e.id).collect::<Vec<_>>(),
                table.links.len(),
            )
        };
        // A fresh resolver: the first entity touch restores the table —
        // same stable IDs, same constraint set.
        let r = StreamResolver::new(config, &gazetteer()).unwrap();
        let table = r.entities("cohen").unwrap();
        assert_eq!(
            table.entities.iter().map(|e| e.id).collect::<Vec<_>>(),
            ids_before
        );
        assert_eq!(table.links.len(), links_before);
        assert_eq!(table.constraints, 1);
        assert_eq!(table.report.retained_ids, ids_before.len());
        assert_eq!(table.report.fresh_ids, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_records_are_rejected_on_restore() {
        let dir = temp_dir("tamper");
        let config = StreamConfig::default().with_state_dir(&dir);
        {
            let r = StreamResolver::new(config.clone(), &gazetteer()).unwrap();
            r.seed("cohen", &seed_docs()).unwrap();
            r.persist_all().unwrap();
        }
        // Corrupt the recorded partition: replay will not reproduce it.
        let mut record = snapshot::read_record(&dir, "cohen").unwrap().unwrap();
        for label in &mut record.partition {
            *label = 9;
        }
        snapshot::write_record(&dir, &record).unwrap();
        let r = StreamResolver::new(config, &gazetteer()).unwrap();
        assert!(matches!(
            r.restore_all(),
            Err(StreamError::SnapshotRejected(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
