//! The streaming resolver: thread-safe per-name state behind one façade.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use weber_core::resolver::Resolver;
use weber_extract::gazetteer::Gazetteer;
use weber_extract::pipeline::Extractor;
use weber_graph::Partition;

use crate::config::StreamConfig;
use crate::error::StreamError;
use crate::snapshot::{NameSnapshot, Snapshot};
use crate::state::{ClusterAssignment, NameState};

/// One labelled document of a seed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedDocument {
    /// Page text.
    pub text: String,
    /// Page URL, when known.
    pub url: Option<String>,
    /// Entity label within the batch (documents with equal labels are the
    /// same person).
    pub label: u32,
}

/// What seeding a name produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSummary {
    /// Documents trained on.
    pub docs: usize,
    /// Clusters in the initial partition.
    pub clusters: usize,
    /// Selected similarity function.
    pub function: String,
    /// Selected decision criterion label.
    pub criterion: String,
    /// Training accuracy of the selected layer.
    pub accuracy: f64,
}

/// A thread-safe streaming resolver over many ambiguous names.
///
/// Each name is seeded once with a labelled batch — which trains that
/// name's decision model via the batch resolver's best-graph selection —
/// and then grows one document at a time via [`ingest`](Self::ingest).
/// Names are independently locked, so ingests for different names run in
/// parallel; the feature extractor is shared (its vocabulary is global).
pub struct StreamResolver {
    extractor: Extractor,
    resolver: Resolver,
    config: StreamConfig,
    names: RwLock<HashMap<String, Arc<Mutex<NameState>>>>,
}

impl std::fmt::Debug for StreamResolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamResolver")
            .field("config", &self.config)
            .field("names", &self.names().len())
            .finish()
    }
}

impl StreamResolver {
    /// Create a resolver over the given gazetteer (the dictionary feature
    /// extraction recognises concepts and entities with).
    pub fn new(config: StreamConfig, gazetteer: &Gazetteer) -> Result<Self, StreamError> {
        let resolver = Resolver::new(config.resolver.clone())?;
        Ok(Self {
            extractor: Extractor::new(gazetteer),
            resolver,
            config,
            names: RwLock::new(HashMap::new()),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Seed (or re-seed, replacing all state for) one name from a labelled
    /// batch. Trains the name's decision model and builds its initial
    /// partition.
    pub fn seed(&self, name: &str, docs: &[SeedDocument]) -> Result<SeedSummary, StreamError> {
        let features = docs
            .iter()
            .map(|d| self.extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        let labels: Vec<u32> = docs.iter().map(|d| d.label).collect();
        let state = NameState::seed(
            name,
            features,
            &labels,
            &self.resolver,
            self.config.scheme,
            self.config.assignment,
        )?;
        let summary = SeedSummary {
            docs: state.len(),
            clusters: state.cluster_count(),
            function: state.model().function_name().to_string(),
            criterion: state.model().criterion().label(),
            accuracy: state.model().accuracy,
        };
        self.names
            .write()
            .insert(name.to_string(), Arc::new(Mutex::new(state)));
        Ok(summary)
    }

    /// Ingest one document for a seeded name, returning where it landed.
    pub fn ingest(
        &self,
        name: &str,
        text: &str,
        url: Option<&str>,
    ) -> Result<ClusterAssignment, StreamError> {
        let state = self
            .names
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StreamError::UnknownName(name.to_string()))?;
        // Extraction happens outside the name lock (the extractor is
        // thread-safe); only block growth and scoring are serialised.
        let features = self.extractor.extract(text, url);
        let mut state = state.lock();
        Ok(state.ingest(features))
    }

    /// The live partition of a seeded name.
    pub fn partition(&self, name: &str) -> Option<Partition> {
        let state = self.names.read().get(name).cloned()?;
        let state = state.lock();
        Some(state.partition())
    }

    /// Seeded names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.names.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Summaries of every seeded name, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let handles: Vec<(String, Arc<Mutex<NameState>>)> = {
            let map = self.names.read();
            let mut v: Vec<_> = map
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let names = handles
            .into_iter()
            .map(|(name, state)| {
                let state = state.lock();
                NameSnapshot {
                    name,
                    docs: state.len(),
                    clusters: state.cluster_count(),
                    function: state.model().function_name().to_string(),
                    criterion: state.model().criterion().label(),
                    accuracy: state.model().accuracy,
                }
            })
            .collect();
        Snapshot { names }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gazetteer() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        g
    }

    fn seed_docs() -> Vec<SeedDocument> {
        [
            ("databases are fun and databases are important", 0),
            ("databases are hard but databases pay well", 0),
            ("gardening tips for growing roses", 1),
            ("gardening advice on pruning roses", 1),
        ]
        .iter()
        .map(|&(t, l)| SeedDocument {
            text: t.to_string(),
            url: None,
            label: l,
        })
        .collect()
    }

    #[test]
    fn seed_then_ingest() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        let summary = r.seed("cohen", &seed_docs()).unwrap();
        assert_eq!(summary.docs, 4);
        assert!(!summary.function.is_empty());
        let a = r
            .ingest("cohen", "databases are fun and databases are hard", None)
            .unwrap();
        assert_eq!(a.doc, 4);
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
    }

    #[test]
    fn unknown_name_is_rejected() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        assert!(matches!(
            r.ingest("nobody", "text", None),
            Err(StreamError::UnknownName(_))
        ));
        assert!(r.partition("nobody").is_none());
    }

    #[test]
    fn names_are_independent() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        r.seed("smith", &seed_docs()).unwrap();
        r.ingest("cohen", "databases again", None).unwrap();
        assert_eq!(r.partition("cohen").unwrap().len(), 5);
        assert_eq!(r.partition("smith").unwrap().len(), 4);
        assert_eq!(r.names(), vec!["cohen".to_string(), "smith".to_string()]);
    }

    #[test]
    fn snapshot_covers_every_name() {
        let r = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
        r.seed("cohen", &seed_docs()).unwrap();
        r.seed("smith", &seed_docs()).unwrap();
        let s = r.snapshot();
        assert_eq!(s.names.len(), 2);
        assert_eq!(s.names[0].name, "cohen");
        assert_eq!(s.total_docs(), 8);
    }

    #[test]
    fn concurrent_ingests_across_names() {
        let r = Arc::new(StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap());
        r.seed("cohen", &seed_docs()).unwrap();
        r.seed("smith", &seed_docs()).unwrap();
        std::thread::scope(|scope| {
            for name in ["cohen", "smith"] {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..5 {
                        r.ingest(name, &format!("databases text number {i}"), None)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(r.partition("cohen").unwrap().len(), 9);
        assert_eq!(r.partition("smith").unwrap().len(), 9);
    }
}
