//! The streaming resolver's metrics bundle: pre-registered handles for
//! everything the hot paths record, plus the merged read-out the `metrics`
//! protocol op and `--metrics-file` serve.
//!
//! Ownership: each [`StreamResolver`](crate::resolver::StreamResolver)
//! owns one [`StreamMetrics`] with its own private
//! [`Registry`] — two resolvers in one process (tests, embedders) never
//! share counts. The batch pipeline's per-stage timings live in the
//! process-global registry ([`Registry::global`]) because they are
//! recorded deep inside `weber-core` where no resolver handle exists;
//! [`StreamMetrics::merged_snapshot`] folds them into the report, so a
//! `metrics` response shows both halves.
//!
//! Recording is relaxed-atomic on pre-registered handles — the registry
//! lock is never taken per request, honouring the zero-cost-when-unread
//! contract of `weber-obs`.

use std::sync::Arc;

use weber_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use weber_simfun::block::CacheStats;

/// Pre-registered metric handles for one streaming resolver.
#[derive(Debug)]
pub struct StreamMetrics {
    registry: Arc<Registry>,
    /// Wall time of one `ingest` (extraction + scoring + partition), µs.
    pub ingest_us: Arc<Histogram>,
    /// Wall time of one `seed` (extraction + training + closure), µs.
    pub seed_us: Arc<Histogram>,
    /// Documents ingested successfully.
    pub ingests: Arc<Counter>,
    /// Seed batches applied successfully.
    pub seeds: Arc<Counter>,
    /// Checkpoint retrains triggered by ingests (doubling schedule).
    pub retrains: Arc<Counter>,
    /// Names evicted to disk by the LRU bound.
    pub evictions: Arc<Counter>,
    /// Names restored from disk (lazy touch or explicit `restore`).
    pub restores: Arc<Counter>,
    /// Name records written to the state directory.
    pub persists: Arc<Counter>,
    /// Requests currently sitting in the service's admission queues.
    pub queue_depth: Arc<Gauge>,
    /// Wall time of one entity-table materialization (constraint-aware
    /// splitting + stable-ID matching + `SAME_AS` unions), µs.
    pub entity_materialize_us: Arc<Histogram>,
    /// Entity-table materializations run (every `entities`, `same_as`
    /// and `constraint` op rebuilds the touched name's table).
    pub entity_materializations: Arc<Counter>,
    /// Extra fragments produced by constraint-aware cluster splitting.
    pub entity_splits: Arc<Counter>,
    /// Constraint violations found during materialization (forbidden
    /// pairs, vetoed `SAME_AS` unions, unmet one-to-one merges).
    pub entity_constraint_violations: Arc<Counter>,
    /// Similarity-graph cache counters, shared across every block the
    /// resolver owns (counts survive eviction and re-seeding).
    pub cache: Arc<CacheStats>,
}

impl Default for StreamMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamMetrics {
    /// A fresh bundle over a private registry.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let s = registry.scope("stream");
        let e = registry.scope("entity");
        Self {
            entity_materialize_us: e.histogram("materialize_us"),
            entity_materializations: e.counter("materializations"),
            entity_splits: e.counter("splits"),
            entity_constraint_violations: e.counter("constraint_violations"),
            ingest_us: s.histogram("ingest_us"),
            seed_us: s.histogram("seed_us"),
            ingests: s.counter("ingests"),
            seeds: s.counter("seeds"),
            retrains: s.counter("retrains"),
            evictions: s.counter("evictions"),
            restores: s.counter("restores"),
            persists: s.counter("persists"),
            queue_depth: s.gauge("queue_depth"),
            cache: Arc::new(CacheStats::new()),
            registry,
        }
    }

    /// The private registry behind the handles.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One merged snapshot: the resolver's own metrics, the shared
    /// similarity-cache counters (as `stream.cache.*`), and the
    /// process-global registry (the batch pipeline's `core.stage.*`
    /// timings, recorded during seeding and checkpoint retrains).
    pub fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        snap.merge(MetricsSnapshot {
            counters: vec![
                ("stream.cache.hits".into(), self.cache.hits()),
                ("stream.cache.misses".into(), self.cache.misses()),
                ("stream.cache.grows".into(), self.cache.grows()),
                ("stream.cache.rebuilds".into(), self.cache.rebuilds()),
                (
                    "stream.cache.invalidations".into(),
                    self.cache.invalidations(),
                ),
            ],
            ..MetricsSnapshot::default()
        });
        snap.merge(Registry::global().snapshot());
        snap
    }

    /// The merged snapshot rendered as plain text (the `--metrics-file`
    /// format).
    pub fn render_text(&self) -> String {
        self.merged_snapshot().render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_snapshot_includes_cache_counters() {
        let m = StreamMetrics::new();
        m.ingests.add(3);
        m.entity_splits.add(2);
        let snap = m.merged_snapshot();
        assert_eq!(snap.counter("stream.ingests"), Some(3));
        assert_eq!(snap.counter("stream.cache.hits"), Some(0));
        assert!(snap.histogram("stream.ingest_us").is_some());
        assert_eq!(snap.counter("entity.splits"), Some(2));
        assert_eq!(snap.counter("entity.constraint_violations"), Some(0));
        assert!(snap.histogram("entity.materialize_us").is_some());
    }

    #[test]
    fn two_bundles_do_not_share_counts() {
        let a = StreamMetrics::new();
        let b = StreamMetrics::new();
        a.seeds.inc();
        assert_eq!(b.merged_snapshot().counter("stream.seeds"), Some(0));
    }

    #[test]
    fn render_text_carries_every_section() {
        let m = StreamMetrics::new();
        m.ingest_us.record(42);
        let text = m.render_text();
        assert!(text.contains("stream.ingests 0\n"), "{text}");
        assert!(text.contains("stream.queue_depth 0\n"), "{text}");
        assert!(text.contains("stream.ingest_us_count 1\n"), "{text}");
        assert!(text.contains("stream.cache.hits 0\n"), "{text}");
    }
}
