//! The request-processing service: bounded admission queues, a worker
//! pool, and an in-admission-order response stream.
//!
//! Requests enter through [`StreamService::submit`]. Data-plane requests
//! (`seed`, `ingest`) never block: when the target queue is full they are
//! rejected immediately with an `overloaded` response (explicit
//! backpressure — clients retry, the daemon stays responsive). Rare
//! control-plane requests (`snapshot`, `metrics`, `persist`, `restore`,
//! `flush`, `shutdown`) instead wait for a queue slot — shedding a
//! shutdown would be absurd.
//! Requests are routed to workers by name
//! (`hash(name) % workers`), so all operations on one name execute in
//! admission order — a seed is always applied before the ingests admitted
//! after it — while different names proceed in parallel. A collector
//! thread reorders completions by admission sequence number so the
//! response stream matches the request order exactly. That makes `flush`
//! an ordering barrier for free: its response is emitted only after every
//! earlier request has been answered.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use crate::error::StreamError;
use crate::protocol::{self, Request};
use crate::resolver::StreamResolver;

struct Job {
    seq: u64,
    request: Request,
}

/// Handle to a running service: submit request lines, read response lines.
pub struct StreamService {
    /// Kept for admission-time requests (`health`) answered without a
    /// queue round-trip.
    resolver: Arc<StreamResolver>,
    queues: Vec<Sender<Job>>,
    done_tx: Sender<(u64, String)>,
    output: Receiver<String>,
    next_seq: AtomicU64,
    queue_depth: Arc<weber_obs::Gauge>,
    workers: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
}

/// Process one parsed request against the resolver.
pub fn process_request(resolver: &StreamResolver, request: &Request) -> String {
    match request {
        Request::Seed { name, docs } => match resolver.seed(name, docs) {
            Ok(summary) => protocol::ok_seed(name, &summary),
            Err(e) => protocol::err_response(&e),
        },
        Request::Ingest { name, text, url } => match resolver.ingest(name, text, url.as_deref()) {
            Ok(assignment) => protocol::ok_ingest(name, &assignment),
            Err(e) => protocol::err_response(&e),
        },
        Request::Resolve { name } => match resolver.resolve_name(name) {
            Ok(summary) => protocol::ok_resolve(&summary),
            Err(e) => protocol::err_response(&e),
        },
        Request::Entities { name: Some(name) } => match resolver.entities(name) {
            Ok(table) => protocol::ok_entities(&table),
            Err(e) => protocol::err_response(&e),
        },
        Request::Entities { name: None } => match resolver.entities_all() {
            Ok(tables) => protocol::ok_entities_all(&tables),
            Err(e) => protocol::err_response(&e),
        },
        Request::SameAs {
            name,
            a,
            b,
            retract,
        } => match resolver.same_as(name, *a, *b, *retract) {
            Ok(table) => {
                let active = table
                    .links
                    .iter()
                    .any(|l| (l.a == *a && l.b == *b) || (l.a == *b && l.b == *a));
                protocol::ok_same_as(&table, *a, *b, *retract, active)
            }
            Err(e) => protocol::err_response(&e),
        },
        Request::Constraint { name, action } => match resolver.constrain(name, action) {
            Ok((added, table)) => protocol::ok_constraint(&table, added),
            Err(e) => protocol::err_response(&e),
        },
        Request::Snapshot => protocol::ok_snapshot(&resolver.snapshot()),
        Request::Metrics => protocol::ok_metrics(&resolver.metrics().merged_snapshot()),
        Request::Health => protocol::ok_health(&resolver.health()),
        Request::Persist => match resolver.persist_all() {
            Ok(written) => protocol::ok_count("persist", written),
            Err(e) => protocol::err_response(&e),
        },
        Request::Restore => match resolver.restore_all() {
            Ok(restored) => protocol::ok_count("restore", restored),
            Err(e) => protocol::err_response(&e),
        },
        Request::Flush => protocol::ok_plain("flush"),
        Request::Shutdown => protocol::ok_plain("shutdown"),
    }
}

/// Parse and process one request line synchronously (the queue-less
/// convenience path; the service's own parsing happens at admission).
pub fn process_line(resolver: &StreamResolver, line: &str) -> String {
    match protocol::parse_request(line) {
        Ok(request) => process_request(resolver, &request),
        Err(e) => protocol::err_response(&e),
    }
}

impl StreamService {
    /// Start `workers` worker threads, each with a bounded queue of
    /// `queue_capacity` slots (both clamped to at least 1).
    pub fn start(resolver: Arc<StreamResolver>, workers: usize, queue_capacity: usize) -> Self {
        let workers = workers.max(1);
        let per_queue = queue_capacity.max(1);
        let (done_tx, done_rx) = unbounded::<(u64, String)>();
        let (out_tx, output) = unbounded::<String>();
        let queue_depth = Arc::clone(&resolver.metrics().queue_depth);

        let mut queues = Vec::with_capacity(workers);
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let (tx, rx) = bounded::<Job>(per_queue);
                queues.push(tx);
                let done_tx = done_tx.clone();
                let resolver = Arc::clone(&resolver);
                let queue_depth = Arc::clone(&queue_depth);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        queue_depth.sub(1);
                        let response = process_request(&resolver, &job.request);
                        if done_tx.send((job.seq, response)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();

        let collector = std::thread::spawn(move || {
            let mut pending: HashMap<u64, String> = HashMap::new();
            let mut next_emit: u64 = 0;
            while let Ok((seq, response)) = done_rx.recv() {
                pending.insert(seq, response);
                while let Some(line) = pending.remove(&next_emit) {
                    if out_tx.send(line).is_err() {
                        return;
                    }
                    next_emit += 1;
                }
            }
        });

        Self {
            resolver,
            queues,
            done_tx,
            output,
            next_seq: AtomicU64::new(0),
            queue_depth,
            workers: handles,
            collector: Some(collector),
        }
    }

    /// Which worker queue a request belongs to: named operations stick to
    /// `hash(name) % workers` so same-name requests execute in admission
    /// order; name-less operations go to queue 0.
    fn route(&self, request: &Request) -> usize {
        match request {
            Request::Seed { name, .. }
            | Request::Ingest { name, .. }
            | Request::Resolve { name }
            | Request::Entities { name: Some(name) }
            | Request::SameAs { name, .. }
            | Request::Constraint { name, .. } => {
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                name.hash(&mut hasher);
                (hasher.finish() % self.queues.len() as u64) as usize
            }
            _ => 0,
        }
    }

    /// Admit one request line. Data-plane requests (`seed`, `ingest`,
    /// `resolve`) never block: a malformed line or a full queue turns into an
    /// immediate error response at this request's position in the response
    /// stream. Control-plane requests (`snapshot`, `metrics`, `persist`,
    /// `restore`, `flush`, `shutdown`) are never load-shed — they are rare and
    /// clients depend on them, so a full queue makes the admission thread
    /// wait for a slot instead. `health` is special twice over: never
    /// load-shed *and* answered right here at admission, bypassing the
    /// queues entirely, so a probe of a saturated daemon is not stuck
    /// behind the backlog it is trying to measure. Returns the admission
    /// sequence number.
    pub fn submit(&self, line: String) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let response = match protocol::parse_request(&line) {
            Err(e) => Some(protocol::err_response(&e)),
            Ok(Request::Health) => Some(process_request(&self.resolver, &Request::Health)),
            Ok(request) => {
                let queue = &self.queues[self.route(&request)];
                // The gauge goes up before the send: a worker may dequeue
                // the job the instant it lands, and decrementing from a
                // not-yet-incremented gauge would read negative.
                self.queue_depth.add(1);
                let outcome = if matches!(
                    request,
                    Request::Snapshot
                        | Request::Entities { name: None }
                        | Request::Metrics
                        | Request::Persist
                        | Request::Restore
                        | Request::Flush
                        | Request::Shutdown
                ) {
                    match queue.send(Job { seq, request }) {
                        Ok(()) => None,
                        Err(_) => Some(protocol::err_response(&StreamError::Overloaded)),
                    }
                } else {
                    match queue.try_send(Job { seq, request }) {
                        Ok(()) => None,
                        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                            Some(protocol::err_response(&StreamError::Overloaded))
                        }
                    }
                };
                if outcome.is_some() {
                    self.queue_depth.sub(1);
                }
                outcome
            }
        };
        if let Some(response) = response {
            let _ = self.done_tx.send((seq, response));
        }
        seq
    }

    /// Admit a request that already failed at the transport layer (e.g. a
    /// line that is not valid UTF-8, which never yields a `String` to
    /// [`submit`](Self::submit)): the error response takes this request's
    /// position in the response stream and the connection stays usable.
    /// Returns the admission sequence number.
    pub fn submit_error(&self, error: &StreamError) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let _ = self.done_tx.send((seq, protocol::err_response(error)));
        seq
    }

    /// Requests admitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// The response stream, in admission order. Clone it to read from
    /// another thread; it disconnects when the service is finished.
    pub fn responses(&self) -> Receiver<String> {
        self.output.clone()
    }

    /// Stop accepting work, drain the queues, and wait for every response
    /// to be emitted. Returns the response stream so late readers can
    /// drain what is left.
    pub fn finish(self) -> Receiver<String> {
        drop(self.queues);
        for worker in self.workers {
            let _ = worker.join();
        }
        drop(self.done_tx);
        if let Some(collector) = self.collector {
            let _ = collector.join();
        }
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use weber_extract::gazetteer::Gazetteer;

    fn resolver() -> Arc<StreamResolver> {
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        Arc::new(StreamResolver::new(StreamConfig::default(), &g).unwrap())
    }

    fn seed_line() -> String {
        r#"{"op":"seed","name":"cohen","docs":[
            {"text":"databases are fun and databases are important","label":0},
            {"text":"databases are hard but databases pay well","label":0},
            {"text":"gardening tips for growing roses","label":1},
            {"text":"gardening advice on pruning roses","label":1}]}"#
            .replace('\n', " ")
    }

    #[test]
    fn processes_in_admission_order() {
        let service = StreamService::start(resolver(), 3, 16);
        service.submit(seed_line());
        for i in 0..5 {
            service.submit(format!(
                r#"{{"op":"ingest","name":"cohen","text":"databases text number {i}"}}"#
            ));
        }
        service.submit(r#"{"op":"flush"}"#.to_string());
        assert_eq!(service.submitted(), 7);
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 7);
        let first = serde_json::parse_value(&responses[0]).unwrap();
        assert_eq!(first.get("op").unwrap().as_str(), Some("seed"));
        // Same-name requests are routed to one worker, so the seed applies
        // before any ingest, and ingests take block slots in admission
        // order.
        for (i, line) in responses[1..6].iter().enumerate() {
            let v = serde_json::parse_value(line).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
            assert_eq!(v.get("doc").unwrap().as_u64(), Some(4 + i as u64));
        }
        let last = serde_json::parse_value(&responses[6]).unwrap();
        assert_eq!(last.get("op").unwrap().as_str(), Some("flush"));
    }

    #[test]
    fn resolve_sees_the_ingest_admitted_before_it() {
        // `resolve` routes to the same worker as the name's writes, so a
        // resolve admitted after an ingest must report the grown block.
        let service = StreamService::start(resolver(), 2, 8);
        service.submit(seed_line());
        service.submit(r#"{"op":"ingest","name":"cohen","text":"databases again"}"#.to_string());
        service.submit(r#"{"op":"resolve","name":"cohen"}"#.to_string());
        service.submit(r#"{"op":"resolve","name":"nobody"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 4);
        let v = serde_json::parse_value(&responses[2]).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("resolve"));
        assert_eq!(v.get("docs").unwrap().as_u64(), Some(5));
        let v = serde_json::parse_value(&responses[3]).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("unknown-name"));
    }

    #[test]
    fn bad_requests_get_error_responses_not_crashes() {
        let service = StreamService::start(resolver(), 2, 8);
        service.submit("garbage".to_string());
        service.submit(r#"{"op":"ingest","name":"never-seeded","text":"x"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 2);
        for line in &responses {
            let v = serde_json::parse_value(line).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{line}");
        }
    }

    #[test]
    fn full_queue_returns_overloaded() {
        // One worker, capacity-1 queue, and an ingest burst big enough
        // that admissions outpace processing: some responses must be
        // `overloaded`, and the service must neither block nor crash.
        let service = StreamService::start(resolver(), 1, 1);
        service.submit(seed_line());
        let total = 64;
        for i in 0..total {
            service.submit(format!(
                r#"{{"op":"ingest","name":"cohen","text":"databases text number {i}"}}"#
            ));
        }
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), total + 1);
        let overloaded = responses
            .iter()
            .filter(|l| {
                serde_json::parse_value(l)
                    .unwrap()
                    .get("error")
                    .and_then(|e| e.as_str().map(|s| s == "overloaded"))
                    .unwrap_or(false)
            })
            .count();
        assert!(
            overloaded > 0,
            "a capacity-1 queue under a 64-request burst must shed load"
        );
        // Accepted requests were still processed correctly.
        let ok = responses
            .iter()
            .filter(|l| {
                serde_json::parse_value(l)
                    .unwrap()
                    .get("ok")
                    .unwrap()
                    .as_bool()
                    == Some(true)
            })
            .count();
        assert!(ok >= 1);
    }

    #[test]
    fn control_requests_are_never_load_shed() {
        // Same saturation setup as above, but the burst is followed by
        // snapshot + flush + shutdown: control-plane requests must wait
        // for a slot rather than answer `overloaded`.
        let service = StreamService::start(resolver(), 1, 1);
        service.submit(seed_line());
        for i in 0..32 {
            service.submit(format!(
                r#"{{"op":"ingest","name":"cohen","text":"databases text number {i}"}}"#
            ));
        }
        service.submit(r#"{"op":"snapshot"}"#.to_string());
        service.submit(r#"{"op":"flush"}"#.to_string());
        service.submit(r#"{"op":"shutdown"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 36);
        for line in &responses[33..] {
            let v = serde_json::parse_value(line).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
        }
    }

    #[test]
    fn health_is_answered_even_when_the_queue_is_saturated() {
        // Capacity-1 queue under a burst: data-plane requests shed load,
        // but every interleaved health probe must still be answered ok —
        // it bypasses the queues entirely.
        let service = StreamService::start(resolver(), 1, 1);
        service.submit(seed_line());
        for i in 0..16 {
            service.submit(format!(
                r#"{{"op":"ingest","name":"cohen","text":"databases text number {i}"}}"#
            ));
            service.submit(r#"{"op":"health"}"#.to_string());
        }
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 33);
        let mut probes = 0;
        for line in &responses {
            let v = serde_json::parse_value(line).unwrap();
            if v.get("op").and_then(|o| o.as_str()) == Some("health") {
                assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
                assert!(v.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
                probes += 1;
            }
        }
        assert_eq!(probes, 16, "no probe may be shed or dropped");
    }

    #[test]
    fn submit_error_takes_a_position_in_the_response_stream() {
        let service = StreamService::start(resolver(), 2, 8);
        service.submit(seed_line());
        service.submit_error(&StreamError::Parse("invalid UTF-8".into()));
        service.submit(r#"{"op":"flush"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 3);
        let v = serde_json::parse_value(&responses[1]).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("parse"));
        let v = serde_json::parse_value(&responses[2]).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("flush"));
    }

    #[test]
    fn names_route_to_stable_workers() {
        let service = StreamService::start(resolver(), 4, 32);
        service.submit(seed_line());
        service.submit(seed_line().replace("cohen", "smith"));
        for i in 0..4 {
            let name = if i % 2 == 0 { "cohen" } else { "smith" };
            service.submit(format!(
                r#"{{"op":"ingest","name":"{name}","text":"databases text {i}"}}"#
            ));
        }
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 6);
        for line in &responses {
            let v = serde_json::parse_value(line).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
        }
    }

    #[test]
    fn persist_and_restore_round_trip_over_the_wire() {
        let dir = std::env::temp_dir().join(format!(
            "weber_service_persist_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut g = Gazetteer::new();
        g.add_phrases(
            weber_extract::gazetteer::EntityKind::Concept,
            ["databases", "gardening"],
        );
        let config = StreamConfig::default().with_state_dir(&dir);
        let r = Arc::new(StreamResolver::new(config.clone(), &g).unwrap());
        let service = StreamService::start(Arc::clone(&r), 2, 16);
        service.submit(seed_line());
        service.submit(r#"{"op":"persist"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        let persisted = serde_json::parse_value(&responses[1]).unwrap();
        assert_eq!(persisted.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(persisted.get("names").unwrap().as_u64(), Some(1));
        // A fresh resolver restores it over the wire.
        let r2 = Arc::new(StreamResolver::new(config, &g).unwrap());
        let service = StreamService::start(Arc::clone(&r2), 2, 16);
        service.submit(r#"{"op":"restore"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        let restored = serde_json::parse_value(&responses[0]).unwrap();
        assert_eq!(restored.get("names").unwrap().as_u64(), Some(1));
        assert_eq!(
            r2.partition("cohen").unwrap(),
            r.partition("cohen").unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_op_reports_ingest_activity() {
        // One worker so the metrics request runs strictly after the
        // ingests (with several workers it could land on another queue
        // and observe a partial count).
        let service = StreamService::start(resolver(), 1, 16);
        service.submit(seed_line());
        for i in 0..3 {
            service.submit(format!(
                r#"{{"op":"ingest","name":"cohen","text":"databases text number {i}"}}"#
            ));
        }
        service.submit(r#"{"op":"metrics"}"#.to_string());
        let responses: Vec<String> = service.finish().iter().collect();
        assert_eq!(responses.len(), 5);
        let v = serde_json::parse_value(&responses[4]).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("metrics"));
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("stream.ingests").unwrap().as_u64(), Some(3));
        assert_eq!(counters.get("stream.seeds").unwrap().as_u64(), Some(1));
        let ingest_us = v
            .get("histograms")
            .unwrap()
            .get("stream.ingest_us")
            .unwrap();
        assert_eq!(ingest_us.get("count").unwrap().as_u64(), Some(3));
        // Queue depth returns to zero once all admitted work is drained
        // (the metrics request itself was already dequeued when answered).
        let gauges = v.get("gauges").unwrap();
        assert_eq!(gauges.get("stream.queue_depth").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn process_line_works_without_a_queue() {
        let r = resolver();
        let response = process_line(&r, &seed_line());
        let v = serde_json::parse_value(&response).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let snap = process_line(&r, r#"{"op":"snapshot"}"#);
        let v = serde_json::parse_value(&snap).unwrap();
        assert_eq!(v.get("names").unwrap().as_array().unwrap().len(), 1);
    }
}
