//! The NDJSON wire protocol of `weber serve`.
//!
//! One JSON object per line in, one JSON object per line out, dispatched on
//! the `"op"` field:
//!
//! ```text
//! {"op":"seed","name":"cohen","docs":[{"text":"…","url":"…","label":0},…]}
//! {"op":"ingest","name":"cohen","text":"…","url":"…"}
//! {"op":"resolve","name":"cohen"}
//! {"op":"entities","name":"cohen"}
//! {"op":"entities"}
//! {"op":"same_as","name":"cohen","a":1,"b":2}
//! {"op":"same_as","name":"cohen","a":1,"b":2,"retract":true}
//! {"op":"constraint","name":"cohen","add":{"kind":"cannot-link","a":0,"b":3}}
//! {"op":"constraint","name":"cohen","clear":true}
//! {"op":"snapshot"}
//! {"op":"metrics"}
//! {"op":"health"}
//! {"op":"persist"}
//! {"op":"restore"}
//! {"op":"flush"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok"` and echoes the request's `"op"`; failures
//! carry `"error"` instead of result fields. Responses are emitted in
//! admission order, so a `flush` response proves every earlier request has
//! been answered.

use serde::Value;

use crate::error::StreamError;
use crate::resolver::{SeedDocument, SeedSummary};
use crate::snapshot::Snapshot;
use crate::state::ClusterAssignment;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Train a name on a labelled batch.
    Seed {
        /// The ambiguous name.
        name: String,
        /// The labelled documents.
        docs: Vec<SeedDocument>,
    },
    /// Ingest one document for a seeded name.
    Ingest {
        /// The ambiguous name.
        name: String,
        /// Page text.
        text: String,
        /// Page URL, when known.
        url: Option<String>,
    },
    /// Read one name's current state summary (docs, clusters, model).
    /// The per-name read: it routes to the same worker as the name's
    /// writes, so a `resolve` admitted after an `ingest` sees it applied.
    Resolve {
        /// The ambiguous name.
        name: String,
    },
    /// Materialize and read a name's canonical entity table: stable IDs,
    /// member mentions with provenance, active `SAME_AS` links, and the
    /// constraint report of the pass. With no name: every seeded name's
    /// table (the routing tier fans this out across shards).
    Entities {
        /// The ambiguous name, or `None` for every name.
        name: Option<String>,
    },
    /// Assert (or, with `retract`, withdraw) a reversible `SAME_AS` link
    /// between two canonical entity IDs of one name.
    SameAs {
        /// The ambiguous name.
        name: String,
        /// One endpoint entity ID.
        a: u64,
        /// The other endpoint entity ID.
        b: u64,
        /// True to withdraw the link instead of asserting it.
        retract: bool,
    },
    /// Register one global constraint for a name, or clear them all.
    Constraint {
        /// The ambiguous name.
        name: String,
        /// What to do with the name's constraint set.
        action: ConstraintAction,
    },
    /// Report per-name state summaries.
    Snapshot,
    /// Report the daemon's metrics: counters, gauges and latency
    /// histograms.
    Metrics,
    /// Liveness probe: uptime, live names and queue depth. Cheap, never
    /// load-shed, and answered at admission without touching the worker
    /// queues — a saturated daemon still answers its probes.
    Health,
    /// Write every live name's state to the configured state directory.
    Persist,
    /// Load every on-disk name that is not already live.
    Restore,
    /// Ordering barrier: answered after every earlier request.
    Flush,
    /// Stop the service after answering.
    Shutdown,
}

/// What a `constraint` request does to a name's constraint set.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintAction {
    /// Register one constraint (deduplicated).
    Add(weber_entity::Constraint),
    /// Drop every registered constraint.
    Clear,
}

impl Request {
    /// The op label a response should echo.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Seed { .. } => "seed",
            Request::Ingest { .. } => "ingest",
            Request::Resolve { .. } => "resolve",
            Request::Entities { .. } => "entities",
            Request::SameAs { .. } => "same_as",
            Request::Constraint { .. } => "constraint",
            Request::Snapshot => "snapshot",
            Request::Metrics => "metrics",
            Request::Health => "health",
            Request::Persist => "persist",
            Request::Restore => "restore",
            Request::Flush => "flush",
            Request::Shutdown => "shutdown",
        }
    }
}

fn field<'a>(obj: &'a Value, key: &str) -> Result<&'a Value, StreamError> {
    obj.get(key)
        .ok_or_else(|| StreamError::InvalidRequest(format!("missing field '{key}'")))
}

fn string_field(obj: &Value, key: &str) -> Result<String, StreamError> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| StreamError::InvalidRequest(format!("field '{key}' must be a string")))
}

fn optional_string(obj: &Value, key: &str) -> Result<Option<String>, StreamError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| StreamError::InvalidRequest(format!("field '{key}' must be a string"))),
    }
}

fn u64_field(obj: &Value, key: &str) -> Result<u64, StreamError> {
    field(obj, key)?.as_u64().ok_or_else(|| {
        StreamError::InvalidRequest(format!("field '{key}' must be an unsigned integer"))
    })
}

fn optional_bool(obj: &Value, key: &str) -> Result<bool, StreamError> {
    match obj.get(key) {
        None => Ok(false),
        Some(v) if v.is_null() => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| StreamError::InvalidRequest(format!("field '{key}' must be a boolean"))),
    }
}

/// A `{"<doc-index>":"<value>",…}` object, as `(doc, value)` pairs.
fn doc_value_map(obj: &Value, key: &str) -> Result<Vec<(usize, String)>, StreamError> {
    let entries = field(obj, key)?.as_object().ok_or_else(|| {
        StreamError::InvalidRequest(format!(
            "field '{key}' must be an object mapping document indices to strings"
        ))
    })?;
    if entries.is_empty() {
        return Err(StreamError::InvalidRequest(format!(
            "field '{key}' must not be empty"
        )));
    }
    let mut pairs = Vec::with_capacity(entries.len());
    for (doc, value) in entries {
        let doc = doc.parse::<usize>().map_err(|_| {
            StreamError::InvalidRequest(format!("key '{doc}' in '{key}' is not a document index"))
        })?;
        let value = value.as_str().ok_or_else(|| {
            StreamError::InvalidRequest(format!("values of '{key}' must be strings"))
        })?;
        pairs.push((doc, value.to_string()));
    }
    Ok(pairs)
}

/// The `add` spec of a `constraint` request, dispatched on its `kind`.
fn parse_constraint(spec: &Value) -> Result<weber_entity::Constraint, StreamError> {
    let kind = string_field(spec, "kind")?;
    let as_doc = |v: u64| -> Result<usize, StreamError> {
        usize::try_from(v)
            .map_err(|_| StreamError::InvalidRequest(format!("document index {v} is out of range")))
    };
    match kind.as_str() {
        "cannot-link" => Ok(weber_entity::Constraint::CannotLink {
            a: as_doc(u64_field(spec, "a")?)?,
            b: as_doc(u64_field(spec, "b")?)?,
        }),
        "one-to-one" => Ok(weber_entity::Constraint::OneToOne {
            key: string_field(spec, "key")?,
            values: doc_value_map(spec, "values")?,
        }),
        "type" => Ok(weber_entity::Constraint::TypeBoundary {
            types: doc_value_map(spec, "types")?,
        }),
        other => Err(StreamError::InvalidRequest(format!(
            "unknown constraint kind '{other}' (expected cannot-link, one-to-one or type)"
        ))),
    }
}

/// Parse one NDJSON request line.
pub fn parse_request(line: &str) -> Result<Request, StreamError> {
    let value = serde_json::parse_value(line).map_err(|e| StreamError::Parse(e.to_string()))?;
    let op = string_field(&value, "op")?;
    match op.as_str() {
        "seed" => {
            let name = string_field(&value, "name")?;
            let docs_value = field(&value, "docs")?;
            let entries = docs_value.as_array().ok_or_else(|| {
                StreamError::InvalidRequest("field 'docs' must be an array".into())
            })?;
            let mut docs = Vec::with_capacity(entries.len());
            for entry in entries {
                let label = field(entry, "label")?.as_u64().ok_or_else(|| {
                    StreamError::InvalidRequest("field 'label' must be an integer".into())
                })?;
                // Labels are u32 downstream; reject out-of-range values
                // here instead of silently truncating them (which would
                // alias distinct entities).
                let label = u32::try_from(label).map_err(|_| {
                    StreamError::InvalidRequest(format!(
                        "label {label} is out of range (max {})",
                        u32::MAX
                    ))
                })?;
                docs.push(SeedDocument {
                    text: string_field(entry, "text")?,
                    url: optional_string(entry, "url")?,
                    label,
                });
            }
            Ok(Request::Seed { name, docs })
        }
        "ingest" => Ok(Request::Ingest {
            name: string_field(&value, "name")?,
            text: string_field(&value, "text")?,
            url: optional_string(&value, "url")?,
        }),
        "resolve" => Ok(Request::Resolve {
            name: string_field(&value, "name")?,
        }),
        "entities" => Ok(Request::Entities {
            name: optional_string(&value, "name")?,
        }),
        "same_as" => Ok(Request::SameAs {
            name: string_field(&value, "name")?,
            a: u64_field(&value, "a")?,
            b: u64_field(&value, "b")?,
            retract: optional_bool(&value, "retract")?,
        }),
        "constraint" => {
            let name = string_field(&value, "name")?;
            let action = match (value.get("add"), optional_bool(&value, "clear")?) {
                (Some(spec), false) => ConstraintAction::Add(parse_constraint(spec)?),
                (None, true) => ConstraintAction::Clear,
                (Some(_), true) => {
                    return Err(StreamError::InvalidRequest(
                        "'add' and 'clear' are mutually exclusive".into(),
                    ))
                }
                (None, false) => {
                    return Err(StreamError::InvalidRequest(
                        "constraint needs an 'add' spec or 'clear':true".into(),
                    ))
                }
            };
            Ok(Request::Constraint { name, action })
        }
        "snapshot" => Ok(Request::Snapshot),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "persist" => Ok(Request::Persist),
        "restore" => Ok(Request::Restore),
        "flush" => Ok(Request::Flush),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(StreamError::InvalidRequest(format!("unknown op '{other}'"))),
    }
}

/// True when the line is a shutdown request (cheap peek the server's read
/// loop uses to know when to stop accepting input).
pub fn is_shutdown(line: &str) -> bool {
    matches!(parse_request(line), Ok(Request::Shutdown))
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("protocol values serialise")
}

/// Response to a successful `seed`.
pub fn ok_seed(name: &str, summary: &SeedSummary) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("seed".into())),
        ("name", Value::String(name.to_string())),
        ("docs", Value::Number(summary.docs as f64)),
        ("clusters", Value::Number(summary.clusters as f64)),
        ("function", Value::String(summary.function.clone())),
        ("criterion", Value::String(summary.criterion.clone())),
        ("accuracy", Value::Number(summary.accuracy)),
    ]))
}

/// Response to a successful `ingest`.
pub fn ok_ingest(name: &str, a: &ClusterAssignment) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("ingest".into())),
        ("name", Value::String(name.to_string())),
        ("doc", Value::Number(a.doc as f64)),
        ("cluster", Value::Number(a.cluster as f64)),
        ("new_cluster", Value::Bool(a.is_new_cluster)),
        ("cluster_size", Value::Number(a.cluster_size as f64)),
        ("linked_members", Value::Number(a.linked_members as f64)),
    ]))
}

/// Response to a successful `resolve`: the same summary shape one entry
/// of the `snapshot` reply carries, for a single name, plus `members` —
/// the member mention ids of each live cluster (ascending within a
/// cluster, clusters ordered by smallest member).
pub fn ok_resolve(summary: &crate::snapshot::NameSnapshot) -> String {
    let members = summary
        .members
        .iter()
        .map(|cluster| {
            Value::Array(
                cluster
                    .iter()
                    .map(|&doc| Value::Number(doc as f64))
                    .collect(),
            )
        })
        .collect();
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("resolve".into())),
        ("name", Value::String(summary.name.clone())),
        ("docs", Value::Number(summary.docs as f64)),
        ("clusters", Value::Number(summary.clusters as f64)),
        ("function", Value::String(summary.function.clone())),
        ("criterion", Value::String(summary.criterion.clone())),
        ("accuracy", Value::Number(summary.accuracy)),
        ("members", Value::Array(members)),
    ]))
}

/// Response to `snapshot`.
pub fn ok_snapshot(snapshot: &Snapshot) -> String {
    let names = snapshot
        .names
        .iter()
        .map(|n| {
            object(vec![
                ("name", Value::String(n.name.clone())),
                ("docs", Value::Number(n.docs as f64)),
                ("clusters", Value::Number(n.clusters as f64)),
                ("function", Value::String(n.function.clone())),
                ("criterion", Value::String(n.criterion.clone())),
                ("accuracy", Value::Number(n.accuracy)),
            ])
        })
        .collect();
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("snapshot".into())),
        ("names", Value::Array(names)),
    ]))
}

/// One name's canonical entity table as a JSON value: the body shared by
/// the single-name and all-names `entities` responses, and the shape the
/// routing tier's fan-out merge works on.
pub fn entity_table_value(table: &crate::resolver::EntityTable) -> Value {
    use weber_entity::{MentionOrigin, Via};
    let entities = table
        .entities
        .iter()
        .map(|e| {
            let provenance = e
                .provenance
                .iter()
                .map(|p| {
                    let mut fields = vec![
                        ("doc", Value::Number(p.doc as f64)),
                        (
                            "source",
                            Value::String(
                                match p.origin {
                                    MentionOrigin::Seed { .. } => "seed",
                                    MentionOrigin::Ingest => "ingest",
                                }
                                .into(),
                            ),
                        ),
                    ];
                    if let MentionOrigin::Seed { label } = p.origin {
                        fields.push(("label", Value::Number(label as f64)));
                    }
                    fields.push(("via", Value::String(p.via.token().into())));
                    if let Via::SameAs { a, b } = p.via {
                        fields.push((
                            "link",
                            Value::Array(vec![Value::Number(a as f64), Value::Number(b as f64)]),
                        ));
                    }
                    object(fields)
                })
                .collect();
            object(vec![
                ("id", Value::Number(e.id as f64)),
                (
                    "mentions",
                    Value::Array(
                        e.mentions
                            .iter()
                            .map(|&m| Value::Number(m as f64))
                            .collect(),
                    ),
                ),
                ("provenance", Value::Array(provenance)),
            ])
        })
        .collect();
    let links = table
        .links
        .iter()
        .map(|l| {
            object(vec![
                ("a", Value::Number(l.a as f64)),
                ("b", Value::Number(l.b as f64)),
            ])
        })
        .collect();
    object(vec![
        ("name", Value::String(table.name.clone())),
        ("docs", Value::Number(table.docs as f64)),
        ("entities", Value::Array(entities)),
        ("links", Value::Array(links)),
        ("constraints", Value::Number(table.constraints as f64)),
        ("splits", Value::Number(table.report.splits as f64)),
        ("violations", Value::Number(table.report.violations as f64)),
        (
            "vetoed_links",
            Value::Number(table.report.vetoed_links as f64),
        ),
        (
            "retained_ids",
            Value::Number(table.report.retained_ids as f64),
        ),
        (
            "resurrected_ids",
            Value::Number(table.report.resurrected_ids as f64),
        ),
        ("fresh_ids", Value::Number(table.report.fresh_ids as f64)),
    ])
}

/// Response to a per-name `entities`: the table body with `ok`/`op`
/// prepended.
pub fn ok_entities(table: &crate::resolver::EntityTable) -> String {
    let Value::Object(fields) = entity_table_value(table) else {
        unreachable!("entity_table_value builds an object");
    };
    let mut all = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("op".to_string(), Value::String("entities".into())),
    ];
    all.extend(fields);
    render(&Value::Object(all))
}

/// Response to a name-less `entities`: every seeded name's table under
/// `names`, sorted by name.
pub fn ok_entities_all(tables: &[crate::resolver::EntityTable]) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("entities".into())),
        (
            "names",
            Value::Array(tables.iter().map(entity_table_value).collect()),
        ),
    ]))
}

/// Response to a successful `same_as` (assert or retract): echoes the
/// link, reports whether it is now active, and summarises the re-
/// materialized table — `entities`/`links` are counts here, and the
/// violation tallies surface what the pass found (a vetoed link means
/// the union was refused by a constraint but the link remains for
/// retraction).
pub fn ok_same_as(
    table: &crate::resolver::EntityTable,
    a: u64,
    b: u64,
    retract: bool,
    active: bool,
) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("same_as".into())),
        ("name", Value::String(table.name.clone())),
        ("a", Value::Number(a as f64)),
        ("b", Value::Number(b as f64)),
        ("retract", Value::Bool(retract)),
        ("active", Value::Bool(active)),
        ("entities", Value::Number(table.entities.len() as f64)),
        ("links", Value::Number(table.links.len() as f64)),
        ("violations", Value::Number(table.report.violations as f64)),
        (
            "vetoed_links",
            Value::Number(table.report.vetoed_links as f64),
        ),
    ]))
}

/// Response to a successful `constraint`: whether the set grew (an `add`
/// of a duplicate reports `added:false`; a `clear` always reports
/// `added:false`), the resulting set size, and the re-materialized
/// table's summary.
pub fn ok_constraint(table: &crate::resolver::EntityTable, added: bool) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("constraint".into())),
        ("name", Value::String(table.name.clone())),
        ("added", Value::Bool(added)),
        ("constraints", Value::Number(table.constraints as f64)),
        ("entities", Value::Number(table.entities.len() as f64)),
        ("splits", Value::Number(table.report.splits as f64)),
        ("violations", Value::Number(table.report.violations as f64)),
    ]))
}

/// Response to `flush` / `shutdown` (plain acknowledgements).
pub fn ok_plain(op: &str) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String(op.to_string())),
    ]))
}

/// Response to `health`: uptime in (fractional) seconds plus the live
/// name count and current admission-queue depth.
pub fn ok_health(report: &crate::resolver::HealthReport) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("health".into())),
        ("uptime_s", Value::Number(report.uptime.as_secs_f64())),
        ("names", Value::Number(report.names as f64)),
        ("queue_depth", Value::Number(report.queue_depth as f64)),
        ("workers", Value::Number(report.workers as f64)),
        (
            "queue_capacity",
            Value::Number(report.queue_capacity as f64),
        ),
    ]))
}

/// Response to `persist` / `restore`: how many names were written or
/// loaded.
pub fn ok_count(op: &str, names: usize) -> String {
    render(&object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String(op.to_string())),
        ("names", Value::Number(names as f64)),
    ]))
}

/// The `metrics` response body as a JSON value. Split out from
/// [`ok_metrics`] so the routing tier can append shard metadata (degraded
/// markers, unreachable backends) before rendering.
pub fn metrics_value(snapshot: &weber_obs::MetricsSnapshot) -> Value {
    let counters = Value::Object(
        snapshot
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), Value::Number(*v as f64)))
            .collect(),
    );
    let gauges = Value::Object(
        snapshot
            .gauges
            .iter()
            .map(|(name, v)| (name.clone(), Value::Number(*v as f64)))
            .collect(),
    );
    let histograms = Value::Object(
        snapshot
            .histograms
            .iter()
            .map(|h| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(bound, count)| {
                        object(vec![
                            ("le", Value::String(bound.to_string())),
                            ("count", Value::Number(*count as f64)),
                        ])
                    })
                    .collect();
                let body = object(vec![
                    ("count", Value::Number(h.count as f64)),
                    ("sum", Value::Number(h.sum as f64)),
                    ("min", Value::Number(h.min as f64)),
                    ("max", Value::Number(h.max as f64)),
                    ("mean", Value::Number(h.mean())),
                    ("buckets", Value::Array(buckets)),
                ]);
                (h.name.clone(), body)
            })
            .collect(),
    );
    object(vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String("metrics".into())),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Response to `metrics`: counters and gauges as flat objects keyed by
/// metric name, histograms as objects with summary stats and per-bucket
/// counts (`le` is the inclusive upper bound in microseconds, `"+Inf"`
/// for the overflow bucket).
pub fn ok_metrics(snapshot: &weber_obs::MetricsSnapshot) -> String {
    render(&metrics_value(snapshot))
}

/// Error response: a human-readable `error` message plus the stable
/// machine-readable `kind` token ([`StreamError::kind`]). Clients match
/// on `kind` (`"overloaded"` means back off and retry); the `error` text
/// may change wording between versions, `kind` may not.
pub fn err_response(error: &StreamError) -> String {
    render(&object(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(error.to_string())),
        ("kind", Value::String(error.kind().to_string())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let seed = parse_request(
            r#"{"op":"seed","name":"cohen","docs":[{"text":"a","label":0},{"text":"b","url":"http://x.example.com","label":1}]}"#,
        )
        .unwrap();
        match seed {
            Request::Seed { name, docs } => {
                assert_eq!(name, "cohen");
                assert_eq!(docs.len(), 2);
                assert_eq!(docs[0].url, None);
                assert_eq!(docs[1].url.as_deref(), Some("http://x.example.com"));
                assert_eq!(docs[1].label, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"op":"ingest","name":"cohen","text":"hello"}"#).unwrap(),
            Request::Ingest {
                name: "cohen".into(),
                text: "hello".into(),
                url: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"resolve","name":"cohen"}"#).unwrap(),
            Request::Resolve {
                name: "cohen".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"snapshot"}"#).unwrap(),
            Request::Snapshot
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"entities","name":"cohen"}"#).unwrap(),
            Request::Entities {
                name: Some("cohen".into())
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"entities"}"#).unwrap(),
            Request::Entities { name: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"same_as","name":"cohen","a":1,"b":2}"#).unwrap(),
            Request::SameAs {
                name: "cohen".into(),
                a: 1,
                b: 2,
                retract: false
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"same_as","name":"cohen","a":2,"b":1,"retract":true}"#).unwrap(),
            Request::SameAs {
                name: "cohen".into(),
                a: 2,
                b: 1,
                retract: true
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"constraint","name":"cohen","add":{"kind":"cannot-link","a":0,"b":3}}"#
            )
            .unwrap(),
            Request::Constraint {
                name: "cohen".into(),
                action: ConstraintAction::Add(weber_entity::Constraint::CannotLink { a: 0, b: 3 })
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"constraint","name":"cohen","add":{"kind":"one-to-one","key":"affiliation","values":{"0":"acme","2":"globex"}}}"#
            )
            .unwrap(),
            Request::Constraint {
                name: "cohen".into(),
                action: ConstraintAction::Add(weber_entity::Constraint::OneToOne {
                    key: "affiliation".into(),
                    values: vec![(0, "acme".into()), (2, "globex".into())]
                })
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"constraint","name":"cohen","add":{"kind":"type","types":{"1":"person"}}}"#
            )
            .unwrap(),
            Request::Constraint {
                name: "cohen".into(),
                action: ConstraintAction::Add(weber_entity::Constraint::TypeBoundary {
                    types: vec![(1, "person".into())]
                })
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"constraint","name":"cohen","clear":true}"#).unwrap(),
            Request::Constraint {
                name: "cohen".into(),
                action: ConstraintAction::Clear
            }
        );
        assert_eq!(parse_request(r#"{"op":"flush"}"#).unwrap(), Request::Flush);
        assert_eq!(
            parse_request(r#"{"op":"persist"}"#).unwrap(),
            Request::Persist
        );
        assert_eq!(
            parse_request(r#"{"op":"restore"}"#).unwrap(),
            Request::Restore
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        // Not JSON at all: a Parse error with the documented prefix.
        let err = parse_request("not json").unwrap_err();
        assert!(matches!(err, StreamError::Parse(_)), "{err:?}");
        assert!(err.to_string().starts_with("parse: "), "{err}");
        // Well-formed JSON with a bad shape: InvalidRequest.
        let err = parse_request(r#"{"name":"cohen"}"#).unwrap_err();
        assert!(matches!(err, StreamError::InvalidRequest(_)), "{err:?}");
        assert!(parse_request(r#"{"op":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"op":"ingest","name":"cohen"}"#).is_err());
        assert!(
            parse_request(r#"{"op":"resolve"}"#).is_err(),
            "resolve needs a name"
        );
        assert!(
            parse_request(r#"{"op":"seed","name":"c","docs":[{"text":"a"}]}"#).is_err(),
            "label is required"
        );
        // Entity-op shapes that must be refused.
        assert!(
            parse_request(r#"{"op":"same_as","name":"c","a":1}"#).is_err(),
            "same_as needs both endpoints"
        );
        assert!(
            parse_request(r#"{"op":"same_as","name":"c","a":"x","b":2}"#).is_err(),
            "endpoints are unsigned integers"
        );
        assert!(
            parse_request(r#"{"op":"constraint","name":"c"}"#).is_err(),
            "constraint needs add or clear"
        );
        assert!(
            parse_request(
                r#"{"op":"constraint","name":"c","add":{"kind":"cannot-link","a":0,"b":1},"clear":true}"#
            )
            .is_err(),
            "add and clear are exclusive"
        );
        assert!(
            parse_request(r#"{"op":"constraint","name":"c","add":{"kind":"frob","a":0}}"#).is_err(),
            "unknown constraint kind"
        );
        assert!(
            parse_request(
                r#"{"op":"constraint","name":"c","add":{"kind":"one-to-one","key":"k","values":{}}}"#
            )
            .is_err(),
            "empty value map"
        );
        assert!(
            parse_request(
                r#"{"op":"constraint","name":"c","add":{"kind":"type","types":{"x":"person"}}}"#
            )
            .is_err(),
            "non-numeric document key"
        );
    }

    #[test]
    fn out_of_range_labels_are_rejected_not_truncated() {
        // 2^32 truncates to label 0 under `as u32`; it must be an error.
        let line = r#"{"op":"seed","name":"c","docs":[{"text":"a","label":4294967296}]}"#;
        let err = parse_request(line).unwrap_err();
        assert!(matches!(err, StreamError::InvalidRequest(msg) if msg.contains("out of range")));
        // The boundary value itself is fine.
        let line = r#"{"op":"seed","name":"c","docs":[{"text":"a","label":4294967295}]}"#;
        match parse_request(line).unwrap() {
            Request::Seed { docs, .. } => assert_eq!(docs[0].label, u32::MAX),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shutdown_peek() {
        assert!(is_shutdown(r#"{"op":"shutdown"}"#));
        assert!(!is_shutdown(r#"{"op":"flush"}"#));
        assert!(!is_shutdown("garbage"));
    }

    #[test]
    fn responses_are_parseable_json() {
        for line in [
            ok_plain("flush"),
            ok_count("persist", 3),
            err_response(&StreamError::Overloaded),
            ok_snapshot(&Snapshot { names: Vec::new() }),
        ] {
            let v = serde_json::parse_value(&line).unwrap();
            assert!(v.get("ok").is_some(), "{line}");
        }
        let v = serde_json::parse_value(&err_response(&StreamError::Overloaded)).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("overloaded"));
        let v = serde_json::parse_value(&err_response(&StreamError::Parse("junk".into()))).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("parse"));
    }

    #[test]
    fn resolve_response_mirrors_a_snapshot_entry() {
        let summary = crate::snapshot::NameSnapshot {
            name: "cohen".into(),
            docs: 5,
            clusters: 2,
            function: "F8".into(),
            criterion: "threshold".into(),
            accuracy: 1.0,
            members: vec![vec![0, 1, 4], vec![2, 3]],
        };
        let v = serde_json::parse_value(&ok_resolve(&summary)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("resolve"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("cohen"));
        assert_eq!(v.get("docs").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("clusters").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("function").unwrap().as_str(), Some("F8"));
        let members = v.get("members").unwrap().as_array().unwrap();
        assert_eq!(members.len(), 2);
        let first: Vec<u64> = members[0]
            .as_array()
            .unwrap()
            .iter()
            .map(|m| m.as_u64().unwrap())
            .collect();
        assert_eq!(first, vec![0, 1, 4]);
    }

    #[test]
    fn health_response_carries_uptime_and_queue_depth() {
        let report = crate::resolver::HealthReport {
            uptime: std::time::Duration::from_millis(1_500),
            names: 3,
            queue_depth: 2,
            workers: 4,
            queue_capacity: 64,
        };
        let v = serde_json::parse_value(&ok_health(&report)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("health"));
        assert_eq!(v.get("uptime_s").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("names").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("queue_depth").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("queue_capacity").unwrap().as_u64(), Some(64));
    }

    #[test]
    fn metrics_response_carries_counters_and_histograms() {
        let registry = weber_obs::Registry::new();
        registry.counter("stream.cache.hits").add(7);
        registry.gauge("stream.queue_depth").set(2);
        registry.histogram("stream.ingest_us").record(1_500);
        let line = ok_metrics(&registry.snapshot());
        let v = serde_json::parse_value(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("metrics"));
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("stream.cache.hits").unwrap().as_u64(), Some(7));
        let gauges = v.get("gauges").unwrap();
        assert_eq!(gauges.get("stream.queue_depth").unwrap().as_u64(), Some(2));
        let hist = v
            .get("histograms")
            .unwrap()
            .get("stream.ingest_us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(1_500));
        let buckets = hist.get("buckets").unwrap().as_array().unwrap();
        assert!(!buckets.is_empty());
        let total: u64 = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total, 1, "bucket counts are non-cumulative");
        assert_eq!(
            buckets.last().unwrap().get("le").unwrap().as_str(),
            Some("+Inf")
        );
    }
}
