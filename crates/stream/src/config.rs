//! Configuration of the streaming resolver and service.

use weber_core::resolver::ResolverConfig;
use weber_graph::incremental::Linkage;
use weber_simfun::block::WordVectorScheme;

/// How an arriving document is assigned to a cluster once its pairwise
/// link decisions against existing members are known.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AssignmentPolicy {
    /// Union with every linked member (the paper's transitive-closure
    /// semantics, applied online): one arrival may merge several existing
    /// clusters. Matches what batch transitive closure produces over the
    /// same pairwise decisions.
    #[default]
    TransitiveClosure,
    /// Greedy incremental clustering: combine per-member link
    /// probabilities into one score per existing cluster with the given
    /// linkage rule, join the best-scoring cluster if it clears
    /// `threshold`, otherwise found a new cluster. Never merges existing
    /// clusters (the related-work baseline of §VI, applied online).
    Linkage {
        /// The member-score combination rule.
        linkage: Linkage,
        /// Minimum combined score to join a cluster.
        threshold: f64,
    },
}

/// Configuration of a [`StreamResolver`](crate::StreamResolver) and the
/// service wrapped around it.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The batch resolver configuration used to train each name's decision
    /// model on its seed batch (functions, criteria, input partitioning).
    pub resolver: ResolverConfig,
    /// Word-vector weighting for the per-name blocks.
    pub scheme: WordVectorScheme,
    /// Cluster-assignment policy for arriving documents.
    pub assignment: AssignmentPolicy,
    /// Admission-queue capacity of the service; a full queue rejects
    /// requests with an `overloaded` response instead of blocking.
    pub queue_capacity: usize,
    /// Worker threads of the service.
    pub workers: usize,
    /// Directory per-name state records persist into (and restore from).
    /// `None` disables persistence: `persist`/`restore` become no-ops and
    /// eviction is unavailable.
    pub state_dir: Option<std::path::PathBuf>,
    /// Upper bound on names held live in memory; exceeding it
    /// persists-then-drops the least-recently-touched name, which is
    /// transparently restored on its next touch. Requires `state_dir`.
    /// `None` (the default) keeps every seeded name live.
    pub max_names: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            resolver: ResolverConfig::default(),
            scheme: WordVectorScheme::default(),
            assignment: AssignmentPolicy::default(),
            queue_capacity: 64,
            workers: 2,
            state_dir: None,
            max_names: None,
        }
    }
}

impl StreamConfig {
    /// Override the assignment policy.
    pub fn with_assignment(mut self, assignment: AssignmentPolicy) -> Self {
        self.assignment = assignment;
        self
    }

    /// Override the admission-queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable persistence into the given state directory.
    pub fn with_state_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Bound the number of live names (clamped to at least 1); the
    /// coldest name beyond the bound is persisted and dropped.
    pub fn with_max_names(mut self, max_names: usize) -> Self {
        self.max_names = Some(max_names.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = StreamConfig::default();
        assert_eq!(c.assignment, AssignmentPolicy::TransitiveClosure);
        assert!(c.queue_capacity >= 1);
        assert!(c.workers >= 1);
    }

    #[test]
    fn builders_clamp() {
        let c = StreamConfig::default()
            .with_queue_capacity(0)
            .with_workers(0)
            .with_max_names(0);
        assert_eq!(c.queue_capacity, 1);
        assert_eq!(c.workers, 1);
        assert_eq!(c.max_names, Some(1));
    }

    #[test]
    fn persistence_is_off_by_default() {
        let c = StreamConfig::default();
        assert_eq!(c.state_dir, None);
        assert_eq!(c.max_names, None);
        let c = c.with_state_dir("/tmp/weber-state");
        assert!(c.state_dir.is_some());
    }
}
