//! Property-based tests for string and set similarity measures.

use std::collections::BTreeSet;

use proptest::prelude::*;

use weber_simfun::set_sim::{dice, jaccard, overlap_coefficient};
use weber_simfun::string_sim::{
    jaro, jaro_winkler, levenshtein, ngram_dice, normalized_levenshtein,
};

fn string_set() -> impl Strategy<Value = BTreeSet<String>> {
    proptest::collection::btree_set("[a-c]{1,3}", 0..8)
}

proptest! {
    #[test]
    fn levenshtein_is_a_metric(a in "[a-d]{0,8}", b in "[a-d]{0,8}", c in "[a-d]{0,8}") {
        // Identity of indiscernibles.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_longer_string(a in ".{0,12}", b in ".{0,12}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
    }

    #[test]
    fn string_similarities_are_bounded_and_symmetric(a in ".{0,15}", b in ".{0,15}") {
        for (name, f) in [
            ("jaro", jaro as fn(&str, &str) -> f64),
            ("jaro_winkler", jaro_winkler as fn(&str, &str) -> f64),
            ("normalized_levenshtein", normalized_levenshtein as fn(&str, &str) -> f64),
        ] {
            let ab = f(&a, &b);
            let ba = f(&b, &a);
            prop_assert!((0.0..=1.0).contains(&ab), "{name}: {ab}");
            prop_assert!((ab - ba).abs() < 1e-12, "{name} asymmetric");
        }
        let nd = ngram_dice(&a, &b, 2);
        prop_assert!((0.0..=1.0).contains(&nd));
        prop_assert!((nd - ngram_dice(&b, &a, 2)).abs() < 1e-12);
    }

    #[test]
    fn identical_strings_are_maximally_similar(a in ".{0,15}") {
        prop_assert_eq!(jaro(&a, &a), 1.0);
        prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        prop_assert_eq!(normalized_levenshtein(&a, &a), 1.0);
        prop_assert_eq!(ngram_dice(&a, &a, 2), 1.0);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in "[a-f]{0,10}", b in "[a-f]{0,10}") {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn set_similarities_bounded_symmetric(a in string_set(), b in string_set()) {
        for (name, v, w) in [
            ("overlap", overlap_coefficient(&a, &b), overlap_coefficient(&b, &a)),
            ("jaccard", jaccard(&a, &b), jaccard(&b, &a)),
            ("dice", dice(&a, &b), dice(&b, &a)),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{name}: {v}");
            prop_assert!((v - w).abs() < 1e-12, "{name} asymmetric");
        }
    }

    #[test]
    fn set_similarity_ordering(a in string_set(), b in string_set()) {
        // jaccard <= dice <= overlap coefficient, always.
        let (j, d, o) = (jaccard(&a, &b), dice(&a, &b), overlap_coefficient(&a, &b));
        prop_assert!(j <= d + 1e-12);
        prop_assert!(d <= o + 1e-12);
    }

    #[test]
    fn identical_nonempty_sets_score_one(a in string_set()) {
        if !a.is_empty() {
            prop_assert_eq!(overlap_coefficient(&a, &a), 1.0);
            prop_assert_eq!(jaccard(&a, &a), 1.0);
            prop_assert_eq!(dice(&a, &a), 1.0);
        }
    }

    #[test]
    fn disjoint_sets_score_zero(a in string_set()) {
        let b: BTreeSet<String> = a.iter().map(|s| format!("zz{s}")).collect();
        prop_assert_eq!(overlap_coefficient(&a, &b), 0.0);
        prop_assert_eq!(jaccard(&a, &b), 0.0);
    }
}
