//! A prepared block: the documents sharing one ambiguous name, with TF-IDF
//! vectors materialised over a block-local index.
//!
//! The paper applies "a basic blocking technique, so essentially we only
//! compute the similarity values between documents, which are about a
//! person with the same name". TF-IDF statistics (document frequencies) are
//! therefore block-local, exactly as a per-name Lucene index would be.
//!
//! Beyond the vectors, the block owns the *similarity cache*: one
//! [`WeightedGraph`] per `(function, prefilter)` key, grown by appending one
//! row per new document instead of recomputing all `n·(n−1)/2` pairs. Entry
//! validity is structural — a cached graph is current when it covers every
//! document and (for word-vector functions) was computed at the current
//! vector [generation](PreparedBlock::vector_generation) — so the cache
//! needs no explicit invalidation calls and stays bit-identical to a
//! from-scratch computation.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use weber_extract::features::PageFeatures;
use weber_graph::weighted::WeightedGraph;
use weber_textindex::incremental::VectorStore;
use weber_textindex::index::CorpusIndex;
use weber_textindex::minhash::MinHasher;
use weber_textindex::sparse::SparseVector;
use weber_textindex::tfidf::TfIdf;

use crate::functions::SimilarityFunction;
use crate::string_sim::{char_bigrams_sorted, jaro_winkler};

pub use weber_textindex::incremental::WordVectorScheme;

/// Cache key: the function's unique name plus the prefilter threshold (as
/// bits, so the key is hashable); `None` is the exact, unfiltered graph.
type CacheKey = (&'static str, Option<u64>);

/// Per-document features derived once at indexing time, so the name- and
/// URL-based similarity functions (F2, F3, F6, F7) compare precomputed
/// values instead of re-deriving (and re-allocating) them on every one of
/// the `n·(n−1)/2` pairs.
#[derive(Debug, Clone)]
pub struct DerivedFeatures {
    /// Lowercased person names except the block's query name — F6's
    /// "other person-names on the page".
    pub other_persons_lower: BTreeSet<String>,
    /// Lowercased person name closest (Jaro–Winkler) to the query name,
    /// ties broken towards the lexicographically smaller name — F7's
    /// feature.
    pub closest_person_lower: Option<String>,
    /// Lowercased most frequent person name — F3's feature.
    pub most_frequent_person_lower: Option<String>,
    /// Sorted, `u64`-encoded character bigrams of the normalised URL — the
    /// precomputable half of F2's bigram Dice. Empty when the page has no
    /// URL or the normalised URL is shorter than two characters (F2 then
    /// falls back to exact equality, matching `ngram_dice`).
    pub url_bigrams: Vec<u64>,
}

fn derive_features(query_name: &str, features: &PageFeatures) -> DerivedFeatures {
    let q = query_name.to_lowercase();
    DerivedFeatures {
        other_persons_lower: features
            .other_person_names(query_name)
            .into_iter()
            .map(str::to_lowercase)
            .collect(),
        closest_person_lower: features
            .person_names()
            .map(|n| n.to_lowercase())
            .max_by(|a, b| {
                jaro_winkler(a, &q)
                    .total_cmp(&jaro_winkler(b, &q))
                    .then_with(|| b.cmp(a))
            }),
        most_frequent_person_lower: features.most_frequent_person().map(str::to_lowercase),
        url_bigrams: features
            .url
            .as_ref()
            .map(|u| char_bigrams_sorted(&u.normalized))
            .unwrap_or_default(),
    }
}

/// Counters over the block's similarity-graph cache, incremented inside
/// [`PreparedBlock::similarity_graph_with`]. Plain relaxed atomics — no
/// dependency on any metrics framework — so observers (the streaming
/// resolver's metrics report) can share one instance across many blocks
/// via [`PreparedBlock::set_cache_stats`] and read totals that survive
/// block replacement or eviction.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    grows: AtomicU64,
    rebuilds: AtomicU64,
    invalidations: AtomicU64,
}

impl CacheStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests served entirely from a cached graph (full coverage, no
    /// recomputation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests served by growing a cached prefix graph row-by-row.
    pub fn grows(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }

    /// Requests that rebuilt the graph from scratch (cold or stale).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Rebuilds that discarded an existing cached entry because its word
    /// vectors went stale (generation mismatch) — the subset of
    /// [`rebuilds`](Self::rebuilds) where cached work was thrown away.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Everything that was not a pure hit (grows + rebuilds).
    pub fn misses(&self) -> u64 {
        self.grows() + self.rebuilds()
    }
}

#[derive(Debug, Clone)]
struct CachedGraph {
    graph: WeightedGraph,
    /// The vector generation the graph was computed at; only meaningful for
    /// word-vector functions (feature-function values never go stale).
    generation: u64,
}

/// Blocks at or above this size use every available core to fill a
/// similarity graph that cannot be grown row-by-row from the cache.
const PARALLEL_BUILD_LEN: usize = 256;

/// A block of documents about one ambiguous person name, ready for
/// similarity computation.
///
/// Blocks can be built in one shot ([`new`](Self::new) /
/// [`with_scheme`](Self::with_scheme)) or grown one document at a time
/// ([`push`](Self::push)) for streaming ingestion; both paths produce
/// identical vectors because the block-local index is retained and word
/// vectors are refreshed — incrementally, via dirty-term tracking in
/// [`VectorStore`] — whenever document frequencies change.
#[derive(Debug)]
pub struct PreparedBlock {
    /// The ambiguous query name this block was retrieved for.
    query_name: String,
    /// Extracted features, one per document.
    features: Vec<PageFeatures>,
    /// Precomputed per-document name features, aligned with `features`.
    derived: Vec<DerivedFeatures>,
    /// The block-local term index word vectors are derived from (kept so
    /// the block can grow incrementally).
    index: CorpusIndex,
    /// Incrementally maintained word vectors with dirty-term tracking.
    store: VectorStore,
    /// The shingle hasher (fixed parameters, kept for incremental growth).
    hasher: MinHasher,
    /// MinHash signatures over 3-token shingles, aligned with `features`
    /// (near-duplicate / mirror detection, and the optional prefilter).
    minhash: Vec<Vec<u64>>,
    /// Dimensionality of the word-vector space (block vocabulary size);
    /// needed by Pearson correlation (F9).
    vocab_dim: usize,
    /// True when documents were pushed with [`push_deferred`](Self::push_deferred)
    /// and the word vectors have not been re-synced yet.
    vectors_stale: bool,
    /// Per-(function, prefilter) similarity graphs. Interior-mutable so
    /// read paths (`&self`) can populate it; computation happens outside
    /// the lock, which is only held to clone a graph in or out.
    sim_cache: Mutex<HashMap<CacheKey, CachedGraph>>,
    /// Hit/grow/rebuild counters over `sim_cache`. Block-private by
    /// default; [`set_cache_stats`](Self::set_cache_stats) swaps in a
    /// shared instance.
    cache_stats: Arc<CacheStats>,
}

impl PreparedBlock {
    /// Prepare a block: build the block-local TF-IDF index from each page's
    /// analyzed tokens.
    pub fn new(query_name: impl Into<String>, features: Vec<PageFeatures>, scheme: TfIdf) -> Self {
        Self::with_scheme(query_name, features, WordVectorScheme::TfIdf(scheme))
    }

    /// Prepare a block under an explicit word-vector weighting scheme.
    pub fn with_scheme(
        query_name: impl Into<String>,
        features: Vec<PageFeatures>,
        scheme: WordVectorScheme,
    ) -> Self {
        let query_name = query_name.into();
        let mut index = CorpusIndex::new();
        for f in &features {
            index.add_document(&f.tokens);
        }
        let hasher = MinHasher::new(64, 3, 0xD0C5);
        let minhash = features
            .iter()
            .map(|f| hasher.signature(&f.tokens))
            .collect();
        let derived = features
            .iter()
            .map(|f| derive_features(&query_name, f))
            .collect();
        let mut store = VectorStore::new(scheme);
        store.sync(&index);
        let vocab_dim = index.vocabulary_size();
        Self {
            query_name,
            features,
            derived,
            index,
            store,
            hasher,
            minhash,
            vocab_dim,
            vectors_stale: false,
            sim_cache: Mutex::new(HashMap::new()),
            cache_stats: Arc::new(CacheStats::new()),
        }
    }

    /// Replace the block's cache counters with a shared instance, so one
    /// observer can aggregate cache behaviour across many blocks (and
    /// across re-seeds of the same name). Counts already accumulated on
    /// the old instance are not migrated.
    pub fn set_cache_stats(&mut self, stats: Arc<CacheStats>) {
        self.cache_stats = stats;
    }

    /// The block's similarity-cache counters.
    pub fn cache_stats(&self) -> &Arc<CacheStats> {
        &self.cache_stats
    }

    /// An empty block ready for incremental growth via [`push`](Self::push).
    pub fn empty(query_name: impl Into<String>, scheme: WordVectorScheme) -> Self {
        Self::with_scheme(query_name, Vec::new(), scheme)
    }

    /// Append one document to the block; returns its index.
    ///
    /// The document's tokens join the block-local index, its MinHash
    /// signature is computed once, and word vectors are refreshed so that
    /// inverse-document-frequency weights reflect the grown corpus. The
    /// refresh is incremental: only vectors holding a term whose idf factor
    /// actually changed are rewritten (in place), and the result is
    /// bit-identical to a from-scratch rebuild.
    pub fn push(&mut self, features: PageFeatures) -> usize {
        let id = self.push_deferred(features);
        self.ensure_vectors();
        id
    }

    /// Append one document *without* refreshing word vectors; returns its
    /// index. Callers that don't read word vectors between arrivals (e.g. a
    /// streaming resolver whose selected model only looks at names, URLs or
    /// entity sets) batch many deferred pushes and pay for one vector sync
    /// at [`ensure_vectors`](Self::ensure_vectors) time.
    ///
    /// Until `ensure_vectors` runs, [`tfidf`](Self::tfidf),
    /// [`vocab_dim`](Self::vocab_dim) and [`vector_generation`](Self::vector_generation)
    /// reflect the last synced state and must not be used for scoring.
    pub fn push_deferred(&mut self, features: PageFeatures) -> usize {
        let id = self.features.len();
        self.index.add_document(&features.tokens);
        self.minhash.push(self.hasher.signature(&features.tokens));
        self.derived
            .push(derive_features(&self.query_name, &features));
        self.features.push(features);
        self.vectors_stale = true;
        id
    }

    /// Bring word vectors up to date after [`push_deferred`](Self::push_deferred).
    /// A no-op when they already are.
    pub fn ensure_vectors(&mut self) {
        if self.vectors_stale {
            self.store.sync(&self.index);
            self.vocab_dim = self.index.vocabulary_size();
            self.vectors_stale = false;
        }
    }

    /// True when word vectors reflect every pushed document.
    pub fn vectors_current(&self) -> bool {
        !self.vectors_stale
    }

    /// The ambiguous name the block is about.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True for a block with no documents.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Features of document `i`.
    pub fn features(&self, i: usize) -> &PageFeatures {
        &self.features[i]
    }

    /// All features.
    pub fn all_features(&self) -> &[PageFeatures] {
        &self.features
    }

    /// Precomputed name features of document `i`.
    pub fn derived(&self, i: usize) -> &DerivedFeatures {
        &self.derived[i]
    }

    /// TF-IDF vector of document `i`.
    pub fn tfidf(&self, i: usize) -> &SparseVector {
        debug_assert!(
            !self.vectors_stale,
            "word vectors read after push_deferred without ensure_vectors"
        );
        self.store.vector(i)
    }

    /// Word-vector space dimensionality.
    pub fn vocab_dim(&self) -> usize {
        self.vocab_dim
    }

    /// A counter that advances exactly when an already-materialised word
    /// vector changed value during a refresh. Cached similarity graphs for
    /// word-vector functions are valid only at the generation they were
    /// computed at; feature-function graphs ignore it.
    pub fn vector_generation(&self) -> u64 {
        self.store.generation()
    }

    /// MinHash signature of document `i` (64 hashes over 3-token
    /// shingles) — the substrate for near-duplicate detection.
    pub fn minhash_signature(&self, i: usize) -> &[u64] {
        &self.minhash[i]
    }

    /// The similarity of documents `i` and `j` under `f`, sanitised into
    /// `[0, 1]` (NaN ↦ 0) and short-circuited to 0 by the optional MinHash
    /// `prefilter` for word-vector functions whose estimated shingle
    /// Jaccard falls below the threshold. This is the single definition of
    /// a pairwise value; graphs, rows and model replay all route through it.
    pub fn pair_similarity(
        &self,
        f: &dyn SimilarityFunction,
        prefilter: Option<f64>,
        i: usize,
        j: usize,
    ) -> f64 {
        if let Some(threshold) = prefilter {
            if f.uses_word_vectors()
                && MinHasher::estimated_jaccard(&self.minhash[i], &self.minhash[j]) < threshold
            {
                return 0.0;
            }
        }
        let v = f.compare(self, i, j);
        if v.is_nan() {
            0.0
        } else {
            v.clamp(0.0, 1.0)
        }
    }

    /// The full pairwise similarity graph of `f` over the block, served
    /// from the block's cache.
    ///
    /// Cache policy:
    /// - a cached graph covering all `n` documents is returned as-is;
    /// - a cached graph covering a prefix of the documents is *grown* by
    ///   appending one row per missing document (valid for feature
    ///   functions always, and for word-vector functions when the vector
    ///   generation is unchanged — earlier pairs' values are immutable in
    ///   both cases);
    /// - otherwise the graph is rebuilt from scratch, fanning row chunks
    ///   across all cores for blocks of ≥ 256 documents.
    ///
    /// The refreshed entry is stored back, so repeated calls (layer builds,
    /// checkpoint retraining, transitive-closure rebuilds) cost one memcpy.
    pub fn similarity_graph_with(
        &self,
        f: &dyn SimilarityFunction,
        prefilter: Option<f64>,
    ) -> WeightedGraph {
        let n = self.len();
        let word = f.uses_word_vectors();
        debug_assert!(
            !(word && self.vectors_stale),
            "word-vector graph requested after push_deferred without ensure_vectors"
        );
        let generation = self.store.generation();
        let key: CacheKey = (f.name(), prefilter.map(f64::to_bits));
        let cached = self.sim_cache.lock().unwrap().get(&key).cloned();
        let had_entry = cached.is_some();
        let graph = match cached {
            Some(c) if (!word || c.generation == generation) && c.graph.len() == n => {
                self.cache_stats.hits.fetch_add(1, Ordering::Relaxed);
                return c.graph;
            }
            Some(c) if (!word || c.generation == generation) && c.graph.len() < n => {
                self.cache_stats.grows.fetch_add(1, Ordering::Relaxed);
                let mut g = c.graph;
                let mut row = Vec::with_capacity(n - 1);
                for j in g.len()..n {
                    row.clear();
                    row.extend((0..j).map(|i| self.pair_similarity(f, prefilter, i, j)));
                    g.push_node(&row);
                }
                g
            }
            _ => {
                self.cache_stats.rebuilds.fetch_add(1, Ordering::Relaxed);
                if had_entry {
                    // An entry existed but could not be used: its word
                    // vectors were re-weighted since it was computed.
                    self.cache_stats
                        .invalidations
                        .fetch_add(1, Ordering::Relaxed);
                }
                let threads = if n >= PARALLEL_BUILD_LEN {
                    std::thread::available_parallelism().map_or(1, |t| t.get())
                } else {
                    1
                };
                WeightedGraph::from_fn_par(n, threads, |i, j| {
                    self.pair_similarity(f, prefilter, i, j)
                })
            }
        };
        self.sim_cache.lock().unwrap().insert(
            key,
            CachedGraph {
                graph: graph.clone(),
                generation,
            },
        );
        graph
    }

    /// The similarity row of document `doc` against documents `0..doc`
    /// under `f` — the values a streaming resolver needs to place one new
    /// arrival.
    ///
    /// For feature functions the row is read from the cached graph (growing
    /// it on the way, so the work is reused by the next checkpoint). For
    /// word-vector functions the row is computed directly: their cached
    /// graphs go stale on almost every push, and caching a row that the
    /// next arrival invalidates would just add a full-matrix rebuild per
    /// ingest.
    pub fn similarity_row_with(
        &self,
        f: &dyn SimilarityFunction,
        prefilter: Option<f64>,
        doc: usize,
    ) -> Vec<f64> {
        if f.uses_word_vectors() {
            (0..doc)
                .map(|i| self.pair_similarity(f, prefilter, i, doc))
                .collect()
        } else {
            let g = self.similarity_graph_with(f, prefilter);
            (0..doc).map(|i| g.get(i, doc)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{standard_suite, NearDuplicateSimilarity, TfIdfCosine};
    use weber_extract::gazetteer::{EntityKind, Gazetteer};
    use weber_extract::pipeline::Extractor;

    fn extractor() -> Extractor {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Concept, ["databases"]);
        Extractor::new(&g)
    }

    fn block(texts: &[&str]) -> PreparedBlock {
        let e = extractor();
        let features = texts.iter().map(|t| e.extract(t, None)).collect();
        PreparedBlock::new("cohen", features, TfIdf::default())
    }

    const TEXTS: &[&str] = &[
        "databases are fun",
        "databases are hard",
        "gardening tips",
        "fun databases for gardening",
        "hard tips about databases",
    ];

    #[test]
    fn builds_aligned_tfidf_vectors() {
        let b = block(&["databases are fun", "databases are hard", "gardening tips"]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.query_name(), "cohen");
        assert!(b.tfidf(0).cosine(b.tfidf(1)) > b.tfidf(0).cosine(b.tfidf(2)));
    }

    #[test]
    fn vocab_dim_counts_block_vocabulary() {
        let b = block(&["alpha beta", "beta gamma"]);
        assert_eq!(b.vocab_dim(), 3);
    }

    #[test]
    fn bm25_scheme_produces_comparable_vectors() {
        let e = extractor();
        let features: Vec<_> = ["databases are fun", "databases are hard", "gardening tips"]
            .iter()
            .map(|t| e.extract(t, None))
            .collect();
        let b = PreparedBlock::with_scheme("cohen", features, WordVectorScheme::bm25());
        assert!(b.tfidf(0).cosine(b.tfidf(1)) > b.tfidf(0).cosine(b.tfidf(2)));
    }

    #[test]
    fn minhash_signatures_flag_identical_documents() {
        let b = block(&[
            "databases are fun to study",
            "databases are fun to study",
            "totally different page text here",
        ]);
        let same = MinHasher::estimated_jaccard(b.minhash_signature(0), b.minhash_signature(1));
        let diff = MinHasher::estimated_jaccard(b.minhash_signature(0), b.minhash_signature(2));
        assert_eq!(same, 1.0);
        assert!(diff < 0.3, "{diff}");
    }

    #[test]
    fn empty_block() {
        let b = block(&[]);
        assert!(b.is_empty());
        assert_eq!(b.vocab_dim(), 0);
    }

    #[test]
    fn pushed_block_equals_batch_block() {
        let batch = block(TEXTS);
        let e = extractor();
        let mut grown = PreparedBlock::empty("cohen", WordVectorScheme::default());
        for (i, t) in TEXTS.iter().enumerate() {
            assert_eq!(grown.push(e.extract(t, None)), i);
        }

        assert_eq!(grown.len(), batch.len());
        assert_eq!(grown.vocab_dim(), batch.vocab_dim());
        for i in 0..batch.len() {
            assert_eq!(grown.minhash_signature(i), batch.minhash_signature(i));
            // Vectors are refreshed incrementally on the grown path and
            // built in one shot on the batch path: bit-identical.
            assert_eq!(grown.tfidf(i), batch.tfidf(i));
        }
        // And the full similarity engine agrees, for every function.
        for f in standard_suite() {
            let gg = grown.similarity_graph_with(f.as_ref(), None);
            let bg = batch.similarity_graph_with(f.as_ref(), None);
            for (i, j, w) in bg.edges() {
                assert!(
                    (gg.get(i, j) - w).abs() < 1e-12,
                    "{} diverged at ({i},{j})",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn deferred_pushes_match_eager_pushes_after_sync() {
        let e = extractor();
        let mut eager = PreparedBlock::empty("cohen", WordVectorScheme::default());
        let mut deferred = PreparedBlock::empty("cohen", WordVectorScheme::default());
        for t in TEXTS {
            eager.push(e.extract(t, None));
            deferred.push_deferred(e.extract(t, None));
        }
        assert!(!deferred.vectors_current());
        deferred.ensure_vectors();
        assert!(deferred.vectors_current());
        assert_eq!(deferred.vocab_dim(), eager.vocab_dim());
        for i in 0..eager.len() {
            assert_eq!(deferred.tfidf(i), eager.tfidf(i));
        }
    }

    #[test]
    fn push_updates_df_weights_of_earlier_documents() {
        let mut b = PreparedBlock::empty("cohen", WordVectorScheme::default());
        let g = Gazetteer::new();
        let e = Extractor::new(&g);
        b.push(e.extract("alpha beta", None));
        b.push(e.extract("gamma delta", None));
        // "alpha" is rare (df=1): weight positive in doc 0.
        let before = b.tfidf(0).norm();
        // A third doc repeating doc 0's words raises their df, shrinking
        // doc 0's idf weights — proof that old vectors are refreshed.
        b.push(e.extract("alpha beta", None));
        let after = b.tfidf(0).norm();
        assert!(
            after < before,
            "idf must drop as df rises: {after} vs {before}"
        );
    }

    #[test]
    fn cached_feature_graph_grows_by_rows_and_stays_exact() {
        let e = extractor();
        let mut b = PreparedBlock::empty("cohen", WordVectorScheme::default());
        let f = NearDuplicateSimilarity;
        for t in TEXTS {
            b.push(e.extract(t, None));
            let g = b.similarity_graph_with(&f, None);
            assert_eq!(g.len(), b.len());
            // Values always match a fresh, cache-free computation.
            for (i, j, w) in g.edges() {
                assert!((w - b.pair_similarity(&f, None, i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_word_vector_graph_tracks_the_generation() {
        let e = extractor();
        let mut b = PreparedBlock::empty("cohen", WordVectorScheme::default());
        let f = TfIdfCosine;
        for t in &TEXTS[..3] {
            b.push(e.extract(t, None));
        }
        let before = b.similarity_graph_with(&f, None);
        assert_eq!(before.len(), 3);
        // Pushing a document changes idf weights: the cached graph must not
        // be served stale.
        b.push(e.extract(TEXTS[3], None));
        let after = b.similarity_graph_with(&f, None);
        assert_eq!(after.len(), 4);
        for (i, j, _) in after.edges() {
            assert!(
                (after.get(i, j) - b.pair_similarity(&f, None, i, j)).abs() < 1e-12,
                "stale value served at ({i},{j})"
            );
        }
    }

    #[test]
    fn similarity_rows_match_the_graph_for_every_function() {
        let e = extractor();
        let mut b = PreparedBlock::empty("cohen", WordVectorScheme::default());
        for t in TEXTS {
            b.push(e.extract(t, None));
        }
        let doc = b.len() - 1;
        for f in standard_suite() {
            let row = b.similarity_row_with(f.as_ref(), None, doc);
            assert_eq!(row.len(), doc);
            for (i, &v) in row.iter().enumerate() {
                assert!(
                    (v - b.pair_similarity(f.as_ref(), None, i, doc)).abs() < 1e-12,
                    "{} row diverged at {i}",
                    f.name()
                );
            }
        }
    }

    #[test]
    fn cache_stats_track_hits_grows_and_invalidations() {
        let e = extractor();
        let mut b = PreparedBlock::empty("cohen", WordVectorScheme::default());
        let stats = Arc::new(CacheStats::new());
        b.set_cache_stats(Arc::clone(&stats));
        for t in &TEXTS[..3] {
            b.push(e.extract(t, None));
        }
        // Cold: one rebuild, no prior entry to invalidate.
        let f = NearDuplicateSimilarity;
        b.similarity_graph_with(&f, None);
        assert_eq!((stats.hits(), stats.rebuilds()), (0, 1));
        assert_eq!(stats.invalidations(), 0);
        // Same size again: pure hit.
        b.similarity_graph_with(&f, None);
        assert_eq!(stats.hits(), 1);
        // Grown block, feature function: row-append grow, not a rebuild.
        b.push(e.extract(TEXTS[3], None));
        b.similarity_graph_with(&f, None);
        assert_eq!(stats.grows(), 1);
        assert_eq!(stats.rebuilds(), 1);
        // Word-vector function: build once, then push (vectors re-weight)
        // and rebuild — the stale entry counts as an invalidation.
        let wv = TfIdfCosine;
        b.similarity_graph_with(&wv, None);
        assert_eq!(stats.rebuilds(), 2);
        b.push(e.extract(TEXTS[4], None));
        b.similarity_graph_with(&wv, None);
        assert_eq!(stats.invalidations(), 1);
        assert_eq!(stats.misses(), stats.grows() + stats.rebuilds());
    }

    #[test]
    fn zero_threshold_prefilter_is_bit_identical_to_no_prefilter() {
        let e = extractor();
        let features: Vec<_> = TEXTS.iter().map(|t| e.extract(t, None)).collect();
        let b = PreparedBlock::new("cohen", features, TfIdf::default());
        for f in standard_suite() {
            let exact = b.similarity_graph_with(f.as_ref(), None);
            let filtered = b.similarity_graph_with(f.as_ref(), Some(0.0));
            assert_eq!(exact, filtered, "{}", f.name());
        }
    }

    #[test]
    fn prefilter_zeroes_dissimilar_word_vector_pairs_only() {
        let e = extractor();
        let features: Vec<_> = [
            "databases are fun and databases are great to study every day",
            "databases are fun and databases are great to study every night",
            "totally unrelated gardening prose mentioning databases once, plus weather",
        ]
        .iter()
        .map(|t| e.extract(t, None))
        .collect();
        let b = PreparedBlock::new("cohen", features, TfIdf::default());
        let f = TfIdfCosine;
        // The unrelated pair shares almost no shingles: the prefilter
        // suppresses its (nonzero) cosine.
        assert!(b.pair_similarity(&f, None, 0, 2) > 0.0);
        assert_eq!(b.pair_similarity(&f, Some(0.5), 0, 2), 0.0);
        // The near-identical pair passes the filter untouched.
        assert_eq!(
            b.pair_similarity(&f, Some(0.5), 0, 1),
            b.pair_similarity(&f, None, 0, 1)
        );
        // Feature functions are never filtered.
        let nd = NearDuplicateSimilarity;
        assert_eq!(
            b.pair_similarity(&nd, Some(0.5), 0, 2),
            b.pair_similarity(&nd, None, 0, 2)
        );
    }
}
