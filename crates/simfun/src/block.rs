//! A prepared block: the documents sharing one ambiguous name, with TF-IDF
//! vectors materialised over a block-local index.
//!
//! The paper applies "a basic blocking technique, so essentially we only
//! compute the similarity values between documents, which are about a
//! person with the same name". TF-IDF statistics (document frequencies) are
//! therefore block-local, exactly as a per-name Lucene index would be.

use weber_extract::features::PageFeatures;
use weber_textindex::index::CorpusIndex;
use weber_textindex::minhash::MinHasher;
use weber_textindex::sparse::SparseVector;
use weber_textindex::tfidf::TfIdf;

/// How word vectors for F8–F10 are weighted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WordVectorScheme {
    /// A TF-IDF scheme (the paper's choice).
    TfIdf(TfIdf),
    /// BM25 weighting (length-normalised, saturating; extension).
    Bm25 {
        /// Term-frequency saturation parameter (standard: 1.2).
        k1: f64,
        /// Length-normalisation strength (standard: 0.75).
        b: f64,
    },
}

impl Default for WordVectorScheme {
    fn default() -> Self {
        WordVectorScheme::TfIdf(TfIdf::default())
    }
}

impl WordVectorScheme {
    /// Standard BM25 parameters.
    pub fn bm25() -> Self {
        WordVectorScheme::Bm25 { k1: 1.2, b: 0.75 }
    }
}

/// A block of documents about one ambiguous person name, ready for
/// similarity computation.
///
/// Blocks can be built in one shot ([`new`](Self::new) /
/// [`with_scheme`](Self::with_scheme)) or grown one document at a time
/// ([`push`](Self::push)) for streaming ingestion; both paths produce
/// identical vectors because the block-local index is retained and word
/// vectors are re-materialised whenever document frequencies change.
#[derive(Debug)]
pub struct PreparedBlock {
    /// The ambiguous query name this block was retrieved for.
    query_name: String,
    /// Extracted features, one per document.
    features: Vec<PageFeatures>,
    /// The block-local term index word vectors are derived from (kept so
    /// the block can grow incrementally).
    index: CorpusIndex,
    /// The weighting scheme vectors are materialised under.
    scheme: WordVectorScheme,
    /// The shingle hasher (fixed parameters, kept for incremental growth).
    hasher: MinHasher,
    /// TF-IDF word vectors, aligned with `features`.
    tfidf: Vec<SparseVector>,
    /// MinHash signatures over 3-token shingles, aligned with `features`
    /// (near-duplicate / mirror detection).
    minhash: Vec<Vec<u64>>,
    /// Dimensionality of the word-vector space (block vocabulary size);
    /// needed by Pearson correlation (F9).
    vocab_dim: usize,
}

impl PreparedBlock {
    /// Prepare a block: build the block-local TF-IDF index from each page's
    /// analyzed tokens.
    pub fn new(query_name: impl Into<String>, features: Vec<PageFeatures>, scheme: TfIdf) -> Self {
        Self::with_scheme(query_name, features, WordVectorScheme::TfIdf(scheme))
    }

    /// Prepare a block under an explicit word-vector weighting scheme.
    pub fn with_scheme(
        query_name: impl Into<String>,
        features: Vec<PageFeatures>,
        scheme: WordVectorScheme,
    ) -> Self {
        let mut index = CorpusIndex::new();
        for f in &features {
            index.add_document(f.tokens.clone());
        }
        let hasher = MinHasher::new(64, 3, 0xD0C5);
        let minhash = features
            .iter()
            .map(|f| hasher.signature(&f.tokens))
            .collect();
        let mut block = Self {
            query_name: query_name.into(),
            features,
            index,
            scheme,
            hasher,
            tfidf: Vec::new(),
            minhash,
            vocab_dim: 0,
        };
        block.refresh_vectors();
        block
    }

    /// An empty block ready for incremental growth via [`push`](Self::push).
    pub fn empty(query_name: impl Into<String>, scheme: WordVectorScheme) -> Self {
        Self::with_scheme(query_name, Vec::new(), scheme)
    }

    /// Append one document to the block; returns its index.
    ///
    /// The document's tokens join the block-local index, its MinHash
    /// signature is computed once, and all word vectors are re-materialised
    /// so that inverse-document-frequency weights reflect the grown corpus —
    /// an ingest therefore costs O(block tokens), the same order as scoring
    /// the new document against every existing member.
    pub fn push(&mut self, features: PageFeatures) -> usize {
        let id = self.features.len();
        self.index.add_document(features.tokens.clone());
        self.minhash.push(self.hasher.signature(&features.tokens));
        self.features.push(features);
        self.refresh_vectors();
        id
    }

    /// Re-materialise word vectors from the current index state.
    fn refresh_vectors(&mut self) {
        self.tfidf = match self.scheme {
            WordVectorScheme::TfIdf(t) => self.index.tfidf_vectors(t),
            WordVectorScheme::Bm25 { k1, b } => self.index.bm25_vectors(k1, b),
        };
        self.vocab_dim = self.index.vocabulary_size();
    }

    /// The ambiguous name the block is about.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True for a block with no documents.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Features of document `i`.
    pub fn features(&self, i: usize) -> &PageFeatures {
        &self.features[i]
    }

    /// All features.
    pub fn all_features(&self) -> &[PageFeatures] {
        &self.features
    }

    /// TF-IDF vector of document `i`.
    pub fn tfidf(&self, i: usize) -> &SparseVector {
        &self.tfidf[i]
    }

    /// Word-vector space dimensionality.
    pub fn vocab_dim(&self) -> usize {
        self.vocab_dim
    }

    /// MinHash signature of document `i` (64 hashes over 3-token
    /// shingles) — the substrate for near-duplicate detection.
    pub fn minhash_signature(&self, i: usize) -> &[u64] {
        &self.minhash[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_extract::gazetteer::{EntityKind, Gazetteer};
    use weber_extract::pipeline::Extractor;

    fn block(texts: &[&str]) -> PreparedBlock {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Concept, ["databases"]);
        let e = Extractor::new(&g);
        let features = texts.iter().map(|t| e.extract(t, None)).collect();
        PreparedBlock::new("cohen", features, TfIdf::default())
    }

    #[test]
    fn builds_aligned_tfidf_vectors() {
        let b = block(&["databases are fun", "databases are hard", "gardening tips"]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.query_name(), "cohen");
        assert!(b.tfidf(0).cosine(b.tfidf(1)) > b.tfidf(0).cosine(b.tfidf(2)));
    }

    #[test]
    fn vocab_dim_counts_block_vocabulary() {
        let b = block(&["alpha beta", "beta gamma"]);
        assert_eq!(b.vocab_dim(), 3);
    }

    #[test]
    fn bm25_scheme_produces_comparable_vectors() {
        let mut g = weber_extract::gazetteer::Gazetteer::new();
        g.add_phrases(weber_extract::gazetteer::EntityKind::Concept, ["databases"]);
        let e = Extractor::new(&g);
        let features: Vec<_> = ["databases are fun", "databases are hard", "gardening tips"]
            .iter()
            .map(|t| e.extract(t, None))
            .collect();
        let b = PreparedBlock::with_scheme("cohen", features, WordVectorScheme::bm25());
        assert!(b.tfidf(0).cosine(b.tfidf(1)) > b.tfidf(0).cosine(b.tfidf(2)));
    }

    #[test]
    fn minhash_signatures_flag_identical_documents() {
        let b = block(&[
            "databases are fun to study",
            "databases are fun to study",
            "totally different page text here",
        ]);
        let same = MinHasher::estimated_jaccard(b.minhash_signature(0), b.minhash_signature(1));
        let diff = MinHasher::estimated_jaccard(b.minhash_signature(0), b.minhash_signature(2));
        assert_eq!(same, 1.0);
        assert!(diff < 0.3, "{diff}");
    }

    #[test]
    fn empty_block() {
        let b = block(&[]);
        assert!(b.is_empty());
        assert_eq!(b.vocab_dim(), 0);
    }

    #[test]
    fn pushed_block_equals_batch_block() {
        let texts = ["databases are fun", "databases are hard", "gardening tips"];
        let batch = block(&texts);

        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Concept, ["databases"]);
        let e = Extractor::new(&g);
        let mut grown = PreparedBlock::empty("cohen", WordVectorScheme::default());
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(grown.push(e.extract(t, None)), i);
        }

        assert_eq!(grown.len(), batch.len());
        assert_eq!(grown.vocab_dim(), batch.vocab_dim());
        for i in 0..batch.len() {
            assert_eq!(grown.minhash_signature(i), batch.minhash_signature(i));
            for j in 0..batch.len() {
                assert!(
                    (grown.tfidf(i).cosine(grown.tfidf(j)) - batch.tfidf(i).cosine(batch.tfidf(j)))
                        .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn push_updates_df_weights_of_earlier_documents() {
        let mut b = PreparedBlock::empty("cohen", WordVectorScheme::default());
        let g = Gazetteer::new();
        let e = Extractor::new(&g);
        b.push(e.extract("alpha beta", None));
        b.push(e.extract("gamma delta", None));
        // "alpha" is rare (df=1): weight positive in doc 0.
        let before = b.tfidf(0).norm();
        // A third doc repeating doc 0's words raises their df, shrinking
        // doc 0's idf weights — proof that old vectors are refreshed.
        b.push(e.extract("alpha beta", None));
        let after = b.tfidf(0).norm();
        assert!(
            after < before,
            "idf must drop as df rises: {after} vs {before}"
        );
    }
}
