//! The similarity-function suite of Table I.
//!
//! | Fn  | Feature                              | Measure                     |
//! |-----|--------------------------------------|-----------------------------|
//! | F1  | Weighted concept vector              | Cosine similarity           |
//! | F2  | URL of the page                      | String similarity           |
//! | F3  | Most frequent name on the page       | String similarity           |
//! | F4  | Concepts vector                      | Overlapping concepts        |
//! | F5  | Organization entities on the page    | Overlapping organizations   |
//! | F6  | Other person-names on the page       | Overlapping persons         |
//! | F7  | The name closest to the search key   | String similarity           |
//! | F8  | TF-IDF words vector                  | Cosine similarity           |
//! | F9  | TF-IDF words vector                  | Pearson correlation         |
//! | F10 | TF-IDF words vector                  | Extended Jaccard similarity |
//!
//! All functions are symmetric, return values in `[0, 1]`, and score 0 when
//! either page is missing the required feature (missing information is not
//! evidence of similarity).

use std::sync::Arc;

use crate::block::PreparedBlock;
use crate::name_sim::name_similarity;
use crate::set_sim::overlap_coefficient;
use crate::string_sim::{dice_sorted_bigrams, jaro_winkler};

/// Identifier of a similarity function in the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionId {
    /// Weighted concept vector, cosine.
    F1,
    /// Page URL, string similarity.
    F2,
    /// Most frequent name, string similarity.
    F3,
    /// Concept set overlap.
    F4,
    /// Organization set overlap.
    F5,
    /// Other person-name overlap.
    F6,
    /// Name closest to the search keyword, string similarity.
    F7,
    /// TF-IDF vector, cosine.
    F8,
    /// TF-IDF vector, Pearson correlation.
    F9,
    /// TF-IDF vector, extended Jaccard.
    F10,
}

impl FunctionId {
    /// All ten ids in order.
    pub const ALL: [FunctionId; 10] = [
        FunctionId::F1,
        FunctionId::F2,
        FunctionId::F3,
        FunctionId::F4,
        FunctionId::F5,
        FunctionId::F6,
        FunctionId::F7,
        FunctionId::F8,
        FunctionId::F9,
        FunctionId::F10,
    ];

    /// The paper's label, e.g. `"F3"`.
    pub fn label(&self) -> &'static str {
        match self {
            FunctionId::F1 => "F1",
            FunctionId::F2 => "F2",
            FunctionId::F3 => "F3",
            FunctionId::F4 => "F4",
            FunctionId::F5 => "F5",
            FunctionId::F6 => "F6",
            FunctionId::F7 => "F7",
            FunctionId::F8 => "F8",
            FunctionId::F9 => "F9",
            FunctionId::F10 => "F10",
        }
    }
}

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A pairwise similarity function over documents of a prepared block.
///
/// The ten functions of Table I implement this, and so can any downstream
/// user function — the resolver accepts arbitrary `SimilarityFunction`
/// trait objects (see the `custom_similarity` example).
pub trait SimilarityFunction: Send + Sync {
    /// Short unique name, e.g. `"F3"` or `"my-location-overlap"`.
    fn name(&self) -> &'static str;

    /// Human-readable description (feature + measure, as in Table I).
    fn description(&self) -> &'static str;

    /// Similarity of documents `i` and `j` of `block`, in `[0, 1]`.
    /// Implementations must be symmetric and return 0 when either page
    /// lacks the required feature.
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64;

    /// How much of the feature this function needs document `doc` carries,
    /// in `[0, 1]`; 0 means the feature is missing entirely. Used by
    /// input-partitioned decision criteria (§IV-A mentions defining regions
    /// "based on some properties of the input") to separate pairs where the
    /// function can be trusted from pairs where a low value only reflects
    /// missing information. Defaults to always-present.
    fn feature_presence(&self, _block: &PreparedBlock, _doc: usize) -> f64 {
        1.0
    }

    /// True if [`compare`](Self::compare) reads the block's word vectors
    /// ([`PreparedBlock::tfidf`] / [`PreparedBlock::vocab_dim`]), whose
    /// values shift as the block grows and idf weights move. Functions over
    /// per-document features (names, URLs, entity sets, MinHash signatures)
    /// return the default `false`: their pairwise values are immutable once
    /// both documents exist, which lets cached similarity rows be reused
    /// verbatim as a streaming block grows. Only return `false` if every
    /// input of `compare` is immutable after the documents are pushed.
    fn uses_word_vectors(&self) -> bool {
        false
    }
}

/// F1: cosine similarity of weighted concept vectors.
#[derive(Debug, Default, Clone, Copy)]
pub struct WeightedConceptCosine;

impl SimilarityFunction for WeightedConceptCosine {
    fn name(&self) -> &'static str {
        "F1"
    }
    fn description(&self) -> &'static str {
        "Weighted concept vector / cosine similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        block
            .features(i)
            .weighted_concepts
            .cosine(&block.features(j).weighted_concepts)
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.features(doc).weighted_concepts.is_empty()))
    }
}

/// F2: string similarity of page URLs.
///
/// Implemented as bigram Dice over the normalised URL, floored at 0.75 for
/// pages sharing a registrable domain — encoding the paper's observation
/// that pages "on a same webdomain" tend to be about the same person.
#[derive(Debug, Default, Clone, Copy)]
pub struct UrlStringSimilarity;

impl SimilarityFunction for UrlStringSimilarity {
    fn name(&self) -> &'static str {
        "F2"
    }
    fn description(&self) -> &'static str {
        "URL of the page / string similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        match (&block.features(i).url, &block.features(j).url) {
            (Some(a), Some(b)) => {
                let (ga, gb) = (&block.derived(i).url_bigrams, &block.derived(j).url_bigrams);
                let s = if ga.is_empty() && gb.is_empty() {
                    // Both URLs shorter than a bigram: exact equality, as
                    // `ngram_dice` defines it.
                    f64::from(u8::from(a.normalized == b.normalized))
                } else {
                    dice_sorted_bigrams(ga, gb)
                };
                if a.same_domain(b) {
                    s.max(0.75)
                } else {
                    s
                }
            }
            _ => 0.0,
        }
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(block.features(doc).url.is_some()))
    }
}

/// F3: string similarity (Jaro–Winkler) of the most frequent person name on
/// each page.
#[derive(Debug, Default, Clone, Copy)]
pub struct MostFrequentNameSimilarity;

impl SimilarityFunction for MostFrequentNameSimilarity {
    fn name(&self) -> &'static str {
        "F3"
    }
    fn description(&self) -> &'static str {
        "Most frequent name on the page / string similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        match (
            &block.derived(i).most_frequent_person_lower,
            &block.derived(j).most_frequent_person_lower,
        ) {
            (Some(a), Some(b)) => jaro_winkler(a, b),
            _ => 0.0,
        }
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(
            block.derived(doc).most_frequent_person_lower.is_some(),
        ))
    }
}

/// F4: overlap of the concept sets.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConceptOverlap;

impl SimilarityFunction for ConceptOverlap {
    fn name(&self) -> &'static str {
        "F4"
    }
    fn description(&self) -> &'static str {
        "Concepts vector / number of overlapping concepts"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        overlap_coefficient(&block.features(i).concepts, &block.features(j).concepts)
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.features(doc).concepts.is_empty()))
    }
}

/// F5: overlap of organization entities.
#[derive(Debug, Default, Clone, Copy)]
pub struct OrganizationOverlap;

impl SimilarityFunction for OrganizationOverlap {
    fn name(&self) -> &'static str {
        "F5"
    }
    fn description(&self) -> &'static str {
        "Organization entities on the page / number of overlapping organizations"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        overlap_coefficient(
            &block.features(i).organizations,
            &block.features(j).organizations,
        )
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.features(doc).organizations.is_empty()))
    }
}

/// F6: overlap of the *other* person names (excluding the query name).
#[derive(Debug, Default, Clone, Copy)]
pub struct OtherPersonOverlap;

impl SimilarityFunction for OtherPersonOverlap {
    fn name(&self) -> &'static str {
        "F6"
    }
    fn description(&self) -> &'static str {
        "Other person-names on the page / number of overlapping persons"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        overlap_coefficient(
            &block.derived(i).other_persons_lower,
            &block.derived(j).other_persons_lower,
        )
    }

    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.derived(doc).other_persons_lower.is_empty()))
    }
}

/// F7: pick, on each page, the person name closest to the search keyword,
/// then string-compare the two chosen names.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClosestNameSimilarity;

impl SimilarityFunction for ClosestNameSimilarity {
    fn name(&self) -> &'static str {
        "F7"
    }
    fn description(&self) -> &'static str {
        "The name closest to the search keyword / string similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        match (
            &block.derived(i).closest_person_lower,
            &block.derived(j).closest_person_lower,
        ) {
            (Some(a), Some(b)) => jaro_winkler(a, b),
            _ => 0.0,
        }
    }

    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(block.derived(doc).closest_person_lower.is_some()))
    }
}

/// F8: cosine similarity of TF-IDF word vectors.
#[derive(Debug, Default, Clone, Copy)]
pub struct TfIdfCosine;

impl SimilarityFunction for TfIdfCosine {
    fn name(&self) -> &'static str {
        "F8"
    }
    fn description(&self) -> &'static str {
        "TF-IDF words vector / cosine similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        block.tfidf(i).cosine(block.tfidf(j))
    }

    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.tfidf(doc).is_empty()))
    }

    fn uses_word_vectors(&self) -> bool {
        true
    }
}

/// F9: Pearson correlation of TF-IDF word vectors (rescaled to `[0, 1]`).
#[derive(Debug, Default, Clone, Copy)]
pub struct TfIdfPearson;

impl SimilarityFunction for TfIdfPearson {
    fn name(&self) -> &'static str {
        "F9"
    }
    fn description(&self) -> &'static str {
        "TF-IDF words vector / Pearson correlation similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        let (a, b) = (block.tfidf(i), block.tfidf(j));
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        a.pearson(b, block.vocab_dim())
    }

    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.tfidf(doc).is_empty()))
    }

    fn uses_word_vectors(&self) -> bool {
        true
    }
}

/// F10: extended Jaccard (Tanimoto) similarity of TF-IDF word vectors.
#[derive(Debug, Default, Clone, Copy)]
pub struct TfIdfExtendedJaccard;

impl SimilarityFunction for TfIdfExtendedJaccard {
    fn name(&self) -> &'static str {
        "F10"
    }
    fn description(&self) -> &'static str {
        "TF-IDF words vector / extended Jaccard similarity"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        block.tfidf(i).extended_jaccard(block.tfidf(j))
    }

    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.tfidf(doc).is_empty()))
    }

    fn uses_word_vectors(&self) -> bool {
        true
    }
}

/// F3s (extension): like F3, but comparing the most frequent names with
/// the token-structured, initial-aware [`name_similarity`] instead of flat
/// Jaro–Winkler — "W. Cohen" and "William Cohen" become highly compatible.
#[derive(Debug, Default, Clone, Copy)]
pub struct StructuredNameSimilarity;

impl SimilarityFunction for StructuredNameSimilarity {
    fn name(&self) -> &'static str {
        "F3s"
    }
    fn description(&self) -> &'static str {
        "Most frequent name on the page / structured name similarity (extension)"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        match (
            block.features(i).most_frequent_person(),
            block.features(j).most_frequent_person(),
        ) {
            (Some(a), Some(b)) => name_similarity(&a.to_lowercase(), &b.to_lowercase()),
            _ => 0.0,
        }
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(
            block.features(doc).most_frequent_person().is_some(),
        ))
    }
}

/// F11 (extension): MinHash-estimated shingle Jaccard of the page texts —
/// a near-duplicate (mirror) detector. Mirrors of the same page score ≈1;
/// independently written pages score near 0, so this layer contributes
/// high-precision "same person" edges for syndicated copies.
#[derive(Debug, Default, Clone, Copy)]
pub struct NearDuplicateSimilarity;

impl SimilarityFunction for NearDuplicateSimilarity {
    fn name(&self) -> &'static str {
        "F11"
    }
    fn description(&self) -> &'static str {
        "Page text shingles / MinHash-estimated Jaccard (near-duplicate detector, extension)"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        weber_textindex::minhash::MinHasher::estimated_jaccard(
            block.minhash_signature(i),
            block.minhash_signature(j),
        )
    }
    fn feature_presence(&self, block: &PreparedBlock, doc: usize) -> f64 {
        f64::from(u8::from(!block.features(doc).tokens.is_empty()))
    }
}

/// Instantiate one function by id.
pub fn function(id: FunctionId) -> Arc<dyn SimilarityFunction> {
    match id {
        FunctionId::F1 => Arc::new(WeightedConceptCosine),
        FunctionId::F2 => Arc::new(UrlStringSimilarity),
        FunctionId::F3 => Arc::new(MostFrequentNameSimilarity),
        FunctionId::F4 => Arc::new(ConceptOverlap),
        FunctionId::F5 => Arc::new(OrganizationOverlap),
        FunctionId::F6 => Arc::new(OtherPersonOverlap),
        FunctionId::F7 => Arc::new(ClosestNameSimilarity),
        FunctionId::F8 => Arc::new(TfIdfCosine),
        FunctionId::F9 => Arc::new(TfIdfPearson),
        FunctionId::F10 => Arc::new(TfIdfExtendedJaccard),
    }
}

/// All ten functions, F1–F10.
pub fn standard_suite() -> Vec<Arc<dyn SimilarityFunction>> {
    FunctionId::ALL.iter().map(|&id| function(id)).collect()
}

/// The paper's subset `I4 = {F4, F5, F7, F9}` (Table II).
pub fn subset_i4() -> Vec<FunctionId> {
    vec![
        FunctionId::F4,
        FunctionId::F5,
        FunctionId::F7,
        FunctionId::F9,
    ]
}

/// The paper's subset `I7 = {F3, F4, F5, F7, F8, F9, F10}` (Table II).
pub fn subset_i7() -> Vec<FunctionId> {
    vec![
        FunctionId::F3,
        FunctionId::F4,
        FunctionId::F5,
        FunctionId::F7,
        FunctionId::F8,
        FunctionId::F9,
        FunctionId::F10,
    ]
}

/// The paper's subset `I10 = {F1, …, F10}` (Table II).
pub fn subset_i10() -> Vec<FunctionId> {
    FunctionId::ALL.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_extract::gazetteer::{EntityKind, Gazetteer, GazetteerEntry};
    use weber_extract::pipeline::Extractor;
    use weber_textindex::tfidf::TfIdf;

    fn gazetteer() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add_phrases(
            EntityKind::Person,
            ["William Cohen", "Don Cohen", "Tom Mitchell", "Jamie Callan"],
        );
        g.add_phrases(
            EntityKind::Organization,
            ["Carnegie Mellon University", "ISI", "Google"],
        );
        g.add(GazetteerEntry::simple("machine learning", EntityKind::Concept).with_weight(0.9));
        g.add(
            GazetteerEntry::simple("information extraction", EntityKind::Concept).with_weight(0.8),
        );
        g.add(GazetteerEntry::simple("genealogy", EntityKind::Concept).with_weight(0.7));
        g
    }

    fn block() -> PreparedBlock {
        let e = Extractor::new(&gazetteer());
        let docs = [
            (
                "William Cohen studies machine learning and information extraction \
                 at Carnegie Mellon University with Tom Mitchell. William Cohen's homepage.",
                Some("http://www.cs.cmu.edu/~wcohen/"),
            ),
            (
                "William Cohen teaches machine learning at Carnegie Mellon University. \
                 Tom Mitchell also teaches there. William Cohen's page.",
                Some("http://www.cs.cmu.edu/afs/cohen/teaching"),
            ),
            (
                "Don Cohen writes about genealogy at ISI. Don Cohen, Don Cohen.",
                Some("http://www.isi.edu/~dcohen"),
            ),
        ];
        let features = docs
            .iter()
            .map(|(text, url)| e.extract(text, *url))
            .collect();
        PreparedBlock::new("Cohen", features, TfIdf::default())
    }

    #[test]
    fn all_functions_are_in_unit_interval_and_symmetric() {
        let b = block();
        for f in standard_suite() {
            for i in 0..b.len() {
                for j in 0..b.len() {
                    if i == j {
                        continue;
                    }
                    let v = f.compare(&b, i, j);
                    assert!((0.0..=1.0).contains(&v), "{}({i},{j}) = {v}", f.name());
                    let w = f.compare(&b, j, i);
                    assert!((v - w).abs() < 1e-12, "{} asymmetric", f.name());
                }
            }
        }
    }

    #[test]
    fn same_person_pages_score_higher_on_every_informative_function() {
        let b = block();
        // Docs 0 and 1 are the CMU William Cohen; doc 2 is Don Cohen at ISI.
        for id in [
            FunctionId::F1,
            FunctionId::F2,
            FunctionId::F4,
            FunctionId::F5,
            FunctionId::F6,
            FunctionId::F8,
            FunctionId::F10,
        ] {
            let f = function(id);
            let same = f.compare(&b, 0, 1);
            let diff = f.compare(&b, 0, 2);
            assert!(
                same > diff,
                "{id}: same-person {same} should exceed different-person {diff}"
            );
        }
    }

    #[test]
    fn f3_compares_most_frequent_names() {
        let b = block();
        let f = MostFrequentNameSimilarity;
        // Doc 1's most frequent person is William Cohen; doc 2's is Don Cohen.
        assert_eq!(f.compare(&b, 0, 1), 1.0);
        assert!(f.compare(&b, 1, 2) < 1.0);
    }

    #[test]
    fn f7_selects_name_closest_to_query() {
        let b = block();
        let f = ClosestNameSimilarity;
        // Closest to "Cohen" on docs 0/1 is "william cohen", on doc 2 "don
        // cohen": high but not 1 across persons.
        let same = f.compare(&b, 0, 1);
        assert_eq!(same, 1.0);
        let cross = f.compare(&b, 0, 2);
        assert!(cross < 1.0 && cross > 0.0);
    }

    #[test]
    fn f2_same_domain_floor() {
        let b = block();
        let f = UrlStringSimilarity;
        assert!(f.compare(&b, 0, 1) >= 0.75);
        assert!(f.compare(&b, 0, 2) < 0.75);
    }

    #[test]
    fn missing_features_score_zero() {
        let e = Extractor::new(&gazetteer());
        let features = vec![
            e.extract("no entities here at all", None),
            e.extract("also nothing relevant", None),
        ];
        let b = PreparedBlock::new("Cohen", features, TfIdf::default());
        for id in [
            FunctionId::F1,
            FunctionId::F2,
            FunctionId::F3,
            FunctionId::F4,
            FunctionId::F5,
            FunctionId::F6,
            FunctionId::F7,
        ] {
            assert_eq!(function(id).compare(&b, 0, 1), 0.0, "{id}");
        }
    }

    #[test]
    fn subsets_match_the_paper() {
        assert_eq!(subset_i4().len(), 4);
        assert_eq!(subset_i7().len(), 7);
        assert_eq!(subset_i10().len(), 10);
        assert!(subset_i7().contains(&FunctionId::F3));
        assert!(!subset_i4().contains(&FunctionId::F1));
        for id in subset_i4() {
            assert!(subset_i7().contains(&id) || id == FunctionId::F9 || id == FunctionId::F4);
        }
    }

    #[test]
    fn near_duplicate_function_spikes_on_mirrors() {
        let e = Extractor::new(&gazetteer());
        let base = "William Cohen studies machine learning and information extraction \
             at Carnegie Mellon University with Tom Mitchell over many years of work. \
             The research group publishes widely on text analysis, builds open tools \
             for students, and collaborates with laboratories across several countries \
             on long running projects about language, knowledge and the web.";
        let mirror = format!("{base} Mirrored copy of an archived page.");
        let features = vec![
            e.extract(base, None),
            e.extract(&mirror, None),
            e.extract(
                "Don Cohen writes about genealogy at ISI in a wholly different style.",
                None,
            ),
        ];
        let b = PreparedBlock::new("Cohen", features, TfIdf::default());
        let f = NearDuplicateSimilarity;
        assert!(
            f.compare(&b, 0, 1) > 0.7,
            "mirror sim {}",
            f.compare(&b, 0, 1)
        );
        assert!(
            f.compare(&b, 0, 2) < 0.3,
            "unrelated sim {}",
            f.compare(&b, 0, 2)
        );
    }

    #[test]
    fn structured_name_variant_beats_flat_f3_on_initial_forms() {
        // Build a block where the same person appears as "w cohen" on one
        // page and "william cohen" on another.
        let mut g = Gazetteer::new();
        g.add_phrases(
            EntityKind::Person,
            ["William Cohen", "W Cohen", "Don Cohen"],
        );
        let e = Extractor::new(&g);
        let features = vec![
            e.extract("William Cohen writes pages.", None),
            e.extract("W Cohen writes pages.", None),
            e.extract("Don Cohen writes pages.", None),
        ];
        let b = PreparedBlock::new("Cohen", features, weber_textindex::tfidf::TfIdf::default());
        let flat = MostFrequentNameSimilarity;
        let structured = StructuredNameSimilarity;
        assert!(structured.compare(&b, 0, 1) > flat.compare(&b, 0, 1));
        // And it still separates genuinely different people.
        assert!(structured.compare(&b, 0, 1) > structured.compare(&b, 0, 2));
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(FunctionId::F10.label(), "F10");
        assert_eq!(format!("{}", FunctionId::F3), "F3");
        assert_eq!(FunctionId::ALL.len(), 10);
    }

    #[test]
    fn only_tfidf_functions_use_word_vectors() {
        for f in standard_suite() {
            let expected = matches!(f.name(), "F8" | "F9" | "F10");
            assert_eq!(f.uses_word_vectors(), expected, "{}", f.name());
        }
        assert!(!StructuredNameSimilarity.uses_word_vectors());
        assert!(!NearDuplicateSimilarity.uses_word_vectors());
    }

    #[test]
    fn suite_names_are_distinct_and_ordered() {
        let suite = standard_suite();
        let names: Vec<_> = suite.iter().map(|f| f.name()).collect();
        let labels: Vec<_> = FunctionId::ALL.iter().map(|id| id.label()).collect();
        assert_eq!(names, labels);
        for f in &suite {
            assert!(!f.description().is_empty());
        }
    }
}
