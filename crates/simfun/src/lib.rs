#![warn(missing_docs)]

//! # weber-simfun
//!
//! Pairwise similarity functions over extracted page features — the heart
//! of §III of the paper ("Each similarity function compares two webpages
//! based on a particular feature (like concepts, urls etc) using a
//! similarity measure (like cosine similarity, number of overlaps etc)").
//!
//! - [`string_sim`] — Levenshtein, Jaro, Jaro–Winkler, n-gram Dice;
//! - [`name_sim`] — token-structured, initial-aware person-name similarity;
//! - [`set_sim`] — overlap coefficient, Jaccard, Dice over entity sets;
//! - [`block`] — [`PreparedBlock`]: a block of
//!   documents with TF-IDF vectors materialised over a shared vocabulary;
//! - [`functions`] — the ten functions F1–F10 of Table I plus the
//!   [`SimilarityFunction`](trait@functions::SimilarityFunction) trait and the
//!   paper's function subsets I4 / I7 / I10.
//!
//! Every similarity is symmetric and maps into `[0, 1]`; missing features
//! score 0 (no evidence of similarity).

pub mod block;
pub mod functions;
pub mod name_sim;
pub mod set_sim;
pub mod string_sim;

pub use block::{PreparedBlock, WordVectorScheme};
pub use functions::{
    standard_suite, subset_i10, subset_i4, subset_i7, FunctionId, NearDuplicateSimilarity,
    SimilarityFunction, StructuredNameSimilarity,
};
pub use name_sim::name_similarity;
pub use set_sim::{dice, jaccard, overlap_coefficient};
pub use string_sim::{jaro, jaro_winkler, levenshtein, ngram_dice, normalized_levenshtein};
