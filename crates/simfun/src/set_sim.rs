//! Set overlap similarities for entity sets (F4/F5/F6: "Number of
//! overlapping concepts / organizations / persons").
//!
//! The raw overlap count is normalised into `[0, 1]` with the overlap
//! coefficient `|A ∩ B| / min(|A|, |B|)`, which keeps the paper's intuition
//! (any shared specific entity is strong evidence) while making values
//! comparable across pages with different feature richness. Jaccard and
//! Dice are provided as alternatives.

use std::collections::BTreeSet;

fn intersection_size<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> usize {
    // Iterate the smaller set; BTreeSet::contains is O(log n).
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter(|x| large.contains(x)).count()
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`; 0 when either set is
/// empty (a page with no extracted entities offers no evidence).
pub fn overlap_coefficient<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    intersection_size(a, b) as f64 / a.len().min(b.len()) as f64
}

/// Jaccard index `|A ∩ B| / |A ∪ B|`; 0 when both sets are empty.
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient `2·|A ∩ B| / (|A| + |B|)`; 0 when both sets are empty.
pub fn dice<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    2.0 * intersection_size(a, b) as f64 / (a.len() + b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn overlap_coefficient_hand_computed() {
        let a = set(&["epfl", "ethz", "mit"]);
        let b = set(&["epfl", "cmu"]);
        assert!((overlap_coefficient(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subset_has_full_overlap_coefficient() {
        let a = set(&["x", "y"]);
        let b = set(&["x", "y", "z", "w"]);
        assert_eq!(overlap_coefficient(&a, &b), 1.0);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_score_zero() {
        let a = set(&["x"]);
        let e = set(&[]);
        assert_eq!(overlap_coefficient(&a, &e), 0.0);
        assert_eq!(overlap_coefficient(&e, &e), 0.0);
        assert_eq!(jaccard(&e, &e), 0.0);
        assert_eq!(dice(&e, &e), 0.0);
    }

    #[test]
    fn identical_sets_score_one() {
        let a = set(&["a", "b", "c"]);
        assert_eq!(overlap_coefficient(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(dice(&a, &a), 1.0);
    }

    #[test]
    fn jaccard_and_dice_hand_computed() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d"]);
        assert!((jaccard(&a, &b) - 2.0 / 4.0).abs() < 1e-12);
        assert!((dice(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let a = set(&["a"]);
        let b = set(&["b"]);
        assert_eq!(overlap_coefficient(&a, &b), 0.0);
        assert_eq!(jaccard(&a, &b), 0.0);
        assert_eq!(dice(&a, &b), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = set(&["x", "y", "z"]);
        let b = set(&["y", "q"]);
        assert_eq!(overlap_coefficient(&a, &b), overlap_coefficient(&b, &a));
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
        assert_eq!(dice(&a, &b), dice(&b, &a));
    }

    #[test]
    fn ordering_dice_le_jaccard_relationship() {
        // For any sets: jaccard <= dice <= overlap_coefficient.
        let a = set(&["a", "b", "c", "d"]);
        let b = set(&["c", "d", "e"]);
        let (j, d, o) = (jaccard(&a, &b), dice(&a, &b), overlap_coefficient(&a, &b));
        assert!(j <= d + 1e-12);
        assert!(d <= o + 1e-12);
    }
}
