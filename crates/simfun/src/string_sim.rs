//! String similarity measures.
//!
//! The paper's F2/F3/F7 are defined as "String Similarity" over URLs and
//! names. We provide the standard family; the function suite uses
//! Jaro–Winkler for person names (its classic application is exactly name
//! matching in record linkage) and n-gram Dice for URLs.

/// Levenshtein edit distance (insertions, deletions, substitutions).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 − dist / max_len`, in `[0, 1]`.
/// Two empty strings are identical (1.0).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter(|&(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale 0.1 and prefix
/// cap 4.
///
/// ```
/// use weber_simfun::jaro_winkler;
///
/// assert_eq!(jaro_winkler("cohen", "cohen"), 1.0);
/// let close = jaro_winkler("cohen", "kohen");
/// assert!(close > 0.8 && close < 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    (j + prefix as f64 * 0.1 * (1.0 - j)).clamp(0.0, 1.0)
}

/// Dice coefficient over character n-grams (default URL measure with
/// `n = 2`). Strings shorter than `n` compare by exact equality.
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f64 {
    assert!(n >= 1, "n-gram size must be positive");
    let grams = |s: &str| -> Vec<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < n {
            return vec![];
        }
        chars.windows(n).map(|w| w.iter().collect()).collect()
    };
    let (mut ga, mut gb) = (grams(a), grams(b));
    if ga.is_empty() && gb.is_empty() {
        // Both strings are shorter than n: compare exactly.
        return if a == b { 1.0 } else { 0.0 };
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    ga.sort();
    gb.sort();
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i < ga.len() && j < gb.len() {
        match ga[i].cmp(&gb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * common as f64 / (ga.len() + gb.len()) as f64
}

/// Character bigrams of `s`, each encoded into one `u64`, sorted — the
/// precomputable half of [`ngram_dice`] with `n = 2`. Strings shorter than
/// two characters yield an empty list (callers fall back to exact
/// equality, as `ngram_dice` does).
pub fn char_bigrams_sorted(s: &str) -> Vec<u64> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return Vec::new();
    }
    let mut grams: Vec<u64> = chars
        .windows(2)
        .map(|w| ((w[0] as u64) << 32) | w[1] as u64)
        .collect();
    grams.sort_unstable();
    grams
}

/// Dice coefficient over two pre-sorted bigram multisets from
/// [`char_bigrams_sorted`]; equal to `ngram_dice(a, b, 2)` when both source
/// strings have at least two characters.
pub fn dice_sorted_bigrams(ga: &[u64], gb: &[u64]) -> f64 {
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i < ga.len() && j < gb.len() {
        match ga[i].cmp(&gb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * common as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("kitten", "sitting");
        assert!((v - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_reference_values() {
        // Canonical examples from the record-linkage literature.
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-5);
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-5);
        assert!((jaro("jellyfish", "smellyfish") - 0.896296).abs() < 1e-5);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-5);
        assert!((jaro_winkler("dixon", "dicksonx") - 0.813333).abs() < 1e-5);
        assert_eq!(jaro_winkler("cohen", "cohen"), 1.0);
    }

    #[test]
    fn jaro_winkler_rewards_common_prefix() {
        // Same Jaro-level difference, but one pair shares a prefix.
        let with_prefix = jaro_winkler("cohenx", "cohen");
        let without = jaro_winkler("xcohen", "cohen");
        assert!(with_prefix > without);
    }

    #[test]
    fn ngram_dice_basics() {
        assert_eq!(ngram_dice("night", "night", 2), 1.0);
        assert_eq!(ngram_dice("abc", "xyz", 2), 0.0);
        // "night"/"nacht": bigrams ni,ig,gh,ht vs na,ac,ch,ht -> 1 common.
        assert!((ngram_dice("night", "nacht", 2) - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ngram_dice_short_strings() {
        assert_eq!(ngram_dice("a", "a", 2), 1.0);
        assert_eq!(ngram_dice("a", "b", 2), 0.0);
        assert_eq!(ngram_dice("", "", 2), 1.0);
        assert_eq!(ngram_dice("", "abc", 2), 0.0);
    }

    #[test]
    fn ngram_dice_counts_multiplicity() {
        // "aaaa" vs "aa": bigrams [aa,aa,aa] vs [aa] -> 2*1/(3+1) = 0.5.
        assert!((ngram_dice("aaaa", "aa", 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorted_bigram_dice_matches_ngram_dice() {
        let samples = [
            "example.com/people/anna",
            "example.com/people/anne",
            "uni.edu/~smith",
            "aaaa",
            "aa",
            "ab",
            "a",
            "",
            "miklós.org/és",
        ];
        for a in samples {
            for b in samples {
                let ga = char_bigrams_sorted(a);
                let gb = char_bigrams_sorted(b);
                if ga.is_empty() && gb.is_empty() {
                    // Precomputed path's callers fall back to exact equality.
                    continue;
                }
                assert!(
                    (dice_sorted_bigrams(&ga, &gb) - ngram_dice(a, b, 2)).abs() < 1e-12,
                    "mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn all_measures_are_symmetric() {
        let pairs = [("cohen", "kohen"), ("epfl.ch", "ethz.ch"), ("", "x")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
            assert!((ngram_dice(a, b, 2) - ngram_dice(b, a, 2)).abs() < 1e-12);
        }
    }

    #[test]
    fn unicode_safety() {
        assert_eq!(levenshtein("miklós", "miklos"), 1);
        assert!(jaro_winkler("miklós", "miklós") == 1.0);
    }
}
