//! Person-name aware similarity.
//!
//! Web pages refer to the same person as "William Cohen", "W. Cohen" or
//! just "Cohen". Plain string similarity under-rates these variants (the
//! Jaro–Winkler of "w cohen" and "william cohen" is ~0.6), so this module
//! provides token-structured name comparison: token-by-token matching with
//! initial-awareness. Exposed as a utility for custom similarity functions
//! (see the `custom_similarity` example) and usable as a drop-in string
//! measure for F3/F7-style functions.

use crate::string_sim::jaro_winkler;

/// Token-level compatibility of two name tokens: equal tokens score 1,
/// an initial matching the other token's first letter scores 0.9 (an
/// initial is consistent but less specific), otherwise Jaro–Winkler.
fn token_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let initial = |x: &str, y: &str| x.chars().count() == 1 && y.starts_with(x);
    if initial(a, b) || initial(b, a) {
        return 0.9;
    }
    jaro_winkler(a, b)
}

/// Structured similarity of two person names (lowercase, whitespace
/// separated), in `[0, 1]`.
///
/// The names are compared token-by-token from the right (surnames align
/// last-to-last, so "w cohen" vs "william cohen" compares `cohen`/`cohen`
/// and `w`/`william`); missing tokens (a bare surname vs a full name)
/// count as a neutral 0.75 each — consistent but unconfirmed.
///
/// ```
/// use weber_simfun::name_similarity;
///
/// assert_eq!(name_similarity("william cohen", "william cohen"), 1.0);
/// // Initial form is highly compatible:
/// assert!(name_similarity("w cohen", "william cohen") > 0.9);
/// // Conflicting first names are penalised:
/// assert!(
///     name_similarity("don cohen", "william cohen")
///         < name_similarity("cohen", "william cohen")
/// );
/// ```
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let ta: Vec<&str> = a.split_whitespace().collect();
    let tb: Vec<&str> = b.split_whitespace().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let len = ta.len().max(tb.len());
    let mut total = 0.0;
    for offset in 0..len {
        // Align from the right: offset 0 compares the surnames.
        let at = offset < ta.len();
        let bt = offset < tb.len();
        total += match (at, bt) {
            (true, true) => token_similarity(ta[ta.len() - 1 - offset], tb[tb.len() - 1 - offset]),
            // A token present on one side only: consistent but unconfirmed.
            _ => 0.75,
        };
    }
    (total / len as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_names_score_one() {
        assert_eq!(name_similarity("william cohen", "william cohen"), 1.0);
        assert_eq!(name_similarity("cohen", "cohen"), 1.0);
    }

    #[test]
    fn initial_forms_are_highly_compatible() {
        let v = name_similarity("w cohen", "william cohen");
        assert!(v > 0.9, "{v}");
        // And symmetric.
        assert_eq!(v, name_similarity("william cohen", "w cohen"));
    }

    #[test]
    fn bare_surname_is_neutral_not_penalised() {
        let bare = name_similarity("cohen", "william cohen");
        assert!((0.8..1.0).contains(&bare), "{bare}");
    }

    #[test]
    fn conflicting_first_names_score_low() {
        let conflict = name_similarity("don cohen", "william cohen");
        let bare = name_similarity("cohen", "william cohen");
        let initial = name_similarity("w cohen", "william cohen");
        assert!(conflict < bare);
        assert!(bare < initial);
    }

    #[test]
    fn different_surnames_dominate() {
        let v = name_similarity("william cohen", "william kaelbling");
        assert!(v < 0.8, "{v}");
    }

    #[test]
    fn beats_plain_jaro_winkler_on_variants() {
        // The motivating case: structured comparison recognises the
        // initial form where flat string similarity does not.
        let structured = name_similarity("w cohen", "william cohen");
        let flat = jaro_winkler("w cohen", "william cohen");
        assert!(
            structured > flat + 0.2,
            "structured {structured} flat {flat}"
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(name_similarity("", ""), 1.0);
        assert_eq!(name_similarity("", "cohen"), 0.0);
        assert_eq!(name_similarity("   ", "cohen"), 0.0);
    }

    #[test]
    fn bounded_and_symmetric() {
        let pairs = [
            ("william cohen", "w cohen"),
            ("leslie pack kaelbling", "l kaelbling"),
            ("ng", "andrew ng"),
            ("a b c", "x y z"),
        ];
        for (a, b) in pairs {
            let v = name_similarity(a, b);
            assert!((0.0..=1.0).contains(&v));
            assert_eq!(v, name_similarity(b, a));
        }
    }
}
