//! The router: one `weber serve`-shaped NDJSON surface over many backends.
//!
//! Per-name writes (`seed`, `ingest`) are forwarded to the `R` distinct
//! backends the [`HashRing`] says hold the name (`--replication R`,
//! default 1), with bounded retries and the answering shard's index
//! appended to the reply; a write acked by fewer than R replicas is
//! marked degraded and the missed lines are buffered per backend for
//! replay when it recovers (write repair). The per-name read (`resolve`)
//! tries the replica set in ring order — healthy members first — and
//! fails over until one answers. Fan-out ops (`snapshot`, `metrics`,
//! `persist`, `restore`, `flush`, `shutdown`) are broadcast to every
//! backend concurrently and merged ([`crate::merge`]) — dead backends
//! degrade the answer rather than fail it (and under replication a
//! snapshot with fewer than R backends down is not degraded at all). Two
//! ops never touch a backend: `health` reports the router's own view of
//! the tier, and `topology` swaps the backend set at runtime (persisting
//! the old ring first so names — and their replicas — migrate through
//! the shared state directory).

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::Value;
use weber_obs::{Counter, Gauge, Histogram, Registry};
use weber_stream::protocol;
use weber_stream::StreamError;

use crate::health::HealthState;
use crate::merge::{self, ShardOutcome};
use crate::pool::{ConnectionPool, Phase};
use crate::ring::HashRing;

/// Lines buffered per backend for write repair before the oldest is
/// dropped (and counted on `route.repair_dropped`). Bounds memory during
/// a long outage; a drop means that backend needs a re-seed or a restore
/// from the shared state directory to fully converge.
const REPAIR_QUEUE_CAP: usize = 4096;

/// Tuning knobs of the routing tier.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Virtual points per backend on the ring (placement smoothing — not
    /// the replication factor; see [`replication`](Self::replication)).
    pub vnodes: usize,
    /// Copies of every name: each write goes to the first `replication`
    /// distinct backends clockwise from the name's ring position, and
    /// reads fail over across the same set. 1 (the default) is plain
    /// sharding; values above the backend count are clamped to it.
    pub replication: usize,
    /// Extra forwarding attempts after the first failure (idempotent ops;
    /// `ingest` only re-attempts failures that provably sent nothing).
    pub retries: usize,
    /// Warm connections kept per backend.
    pub pool_capacity: usize,
    /// TCP connect timeout towards a backend.
    pub connect_timeout: Duration,
    /// Per-exchange read/write timeout towards a backend.
    pub io_timeout: Duration,
    /// Base health-probe cadence (failures back off exponentially from
    /// this).
    pub probe_interval: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            vnodes: 64,
            replication: 1,
            retries: 2,
            pool_capacity: 2,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(30),
            probe_interval: Duration::from_secs(1),
        }
    }
}

/// A bad router configuration or topology request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterError(pub String);

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RouterError {}

/// One backend as the router sees it: its connection pool, health record
/// and per-backend counters (named by address, so they survive topology
/// changes that renumber ring indices).
struct Shard {
    addr: String,
    pool: ConnectionPool,
    health: HealthState,
    /// Write lines this backend missed while its replica peers acked —
    /// replayed in arrival order once it is healthy again. Keyed to the
    /// address (like the counters), so the backlog survives topology
    /// changes that renumber ring indices.
    repair: Mutex<VecDeque<String>>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    retries: Arc<Counter>,
}

impl Shard {
    fn new(addr: &str, options: &RouterOptions, registry: &Registry) -> Self {
        Shard {
            addr: addr.to_string(),
            pool: ConnectionPool::new(
                addr,
                options.pool_capacity,
                options.connect_timeout,
                options.io_timeout,
            ),
            health: HealthState::new(),
            repair: Mutex::new(VecDeque::new()),
            requests: registry.counter(&format!("route.backend.{addr}.requests")),
            errors: registry.counter(&format!("route.backend.{addr}.errors")),
            retries: registry.counter(&format!("route.backend.{addr}.retries")),
        }
    }
}

/// An immutable ring + shard set; swapped atomically on topology change.
struct Topology {
    ring: HashRing,
    shards: Vec<Arc<Shard>>,
}

/// What [`Router::process_line`] did with one request line.
pub struct LineOutcome {
    /// The single NDJSON response line.
    pub response: String,
    /// True when the request asked the whole tier to stop.
    pub shutdown: bool,
}

impl LineOutcome {
    fn reply(response: String) -> Self {
        LineOutcome {
            response,
            shutdown: false,
        }
    }
}

/// The routing tier's state and request loop body.
pub struct Router {
    topology: RwLock<Arc<Topology>>,
    options: RouterOptions,
    registry: Arc<Registry>,
    started: Instant,
    requests: Arc<Counter>,
    retries: Arc<Counter>,
    errors: Arc<Counter>,
    /// Successful write acks on non-primary replicas.
    replica_writes: Arc<Counter>,
    /// Reads answered by a replica other than the name's primary.
    failover_reads: Arc<Counter>,
    /// Buffered write lines successfully replayed to recovered backends.
    replica_lag_repairs: Arc<Counter>,
    /// Buffered write lines dropped because a backend's repair queue
    /// overflowed during its outage.
    repair_dropped: Arc<Counter>,
    forward_us: Arc<Histogram>,
    fanout_us: Arc<Histogram>,
    ring_size: Arc<Gauge>,
    healthy_backends: Arc<Gauge>,
}

fn validated(backends: &[String]) -> Result<(), RouterError> {
    if backends.is_empty() {
        return Err(RouterError("at least one backend is required".into()));
    }
    for (i, addr) in backends.iter().enumerate() {
        if addr.is_empty() {
            return Err(RouterError("backend addresses must be non-empty".into()));
        }
        if backends[..i].contains(addr) {
            return Err(RouterError(format!("backend '{addr}' is listed twice")));
        }
    }
    Ok(())
}

impl Router {
    /// A router over `backends` (non-empty, no duplicates). Backends are
    /// not contacted here — the first probe or routed request finds out
    /// who is alive.
    pub fn new(backends: Vec<String>, options: RouterOptions) -> Result<Self, RouterError> {
        validated(&backends)?;
        let registry = Arc::new(Registry::new());
        let shards = backends
            .iter()
            .map(|addr| Arc::new(Shard::new(addr, &options, &registry)))
            .collect();
        let ring = HashRing::new(&backends, options.vnodes);
        let router = Router {
            topology: RwLock::new(Arc::new(Topology { ring, shards })),
            started: Instant::now(),
            requests: registry.counter("route.requests"),
            retries: registry.counter("route.retries"),
            errors: registry.counter("route.errors"),
            replica_writes: registry.counter("route.replica_writes"),
            failover_reads: registry.counter("route.failover_reads"),
            replica_lag_repairs: registry.counter("route.replica_lag_repairs"),
            repair_dropped: registry.counter("route.repair_dropped"),
            forward_us: registry.histogram("route.forward_us"),
            fanout_us: registry.histogram("route.fanout_us"),
            ring_size: registry.gauge("route.ring_size"),
            healthy_backends: registry.gauge("route.healthy_backends"),
            registry,
            options,
        };
        router.update_gauges();
        Ok(router)
    }

    fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.read())
    }

    /// Current backend addresses, in ring-index order.
    pub fn backends(&self) -> Vec<String> {
        self.topology().ring.backends().to_vec()
    }

    /// Which backend (index, address) owns `name` (the primary of its
    /// replica set).
    pub fn owner(&self, name: &str) -> (usize, String) {
        let topo = self.topology();
        let idx = topo.ring.owner(name);
        (idx, topo.ring.backends()[idx].clone())
    }

    /// The effective replication factor for `topo`: at least 1, never
    /// more than the tier has backends.
    fn replication_for(&self, topo: &Topology) -> usize {
        self.options.replication.clamp(1, topo.ring.len())
    }

    /// `name`'s replica set in `topo` — the backends a write goes to and
    /// a read may be served from, primary first.
    pub fn replica_set(&self, name: &str) -> Vec<usize> {
        let topo = self.topology();
        let r = self.replication_for(&topo);
        topo.ring.successors(name, r)
    }

    /// The router's own metrics registry (the `metrics` op merges this
    /// with every backend's snapshot).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Shared handle to the same registry, for front ends that outlive
    /// a borrow (the event loop surfaces its `net.*` metrics there).
    pub fn registry_handle(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn update_gauges(&self) {
        let topo = self.topology();
        self.ring_size.set(topo.shards.len() as i64);
        let healthy = topo.shards.iter().filter(|s| s.health.is_healthy()).count();
        self.healthy_backends.set(healthy as i64);
    }

    /// One exchange against `shard`, with bounded retries. Idempotent ops
    /// retry any transport failure on a fresh connection; non-idempotent
    /// ops (`ingest`) retry only [`Phase::Connect`] failures — an
    /// exchange-phase failure may already have been applied, and
    /// re-sending it could assign the document twice.
    fn exchange_with_retry(
        &self,
        shard: &Shard,
        line: &str,
        idempotent: bool,
    ) -> Result<String, io::Error> {
        let mut attempt = 0;
        loop {
            match shard.pool.exchange(line) {
                Ok(reply) => {
                    shard.health.mark_success(self.options.probe_interval);
                    return Ok(reply);
                }
                Err((phase, e)) => {
                    shard
                        .health
                        .mark_failure(&e.to_string(), self.options.probe_interval);
                    if phase == Phase::Exchange {
                        // A mid-stream death usually strands every warm
                        // connection from before the restart; drop them so
                        // the retry dials fresh.
                        shard.pool.drain();
                    }
                    let retryable = idempotent || phase == Phase::Connect;
                    if retryable && attempt < self.options.retries {
                        attempt += 1;
                        shard.retries.inc();
                        self.retries.inc();
                        continue;
                    }
                    shard.errors.inc();
                    self.errors.inc();
                    self.update_gauges();
                    return Err(e);
                }
            }
        }
    }

    /// The `unreachable` error for a per-name op whose whole replica set
    /// failed: the same shape the unreplicated router produced, keyed on
    /// the primary.
    fn unreachable_reply(
        &self,
        op: &str,
        name: &str,
        topo: &Topology,
        set: &[usize],
        error: &str,
    ) -> String {
        let primary = set[0];
        let scope = if set.len() == 1 {
            format!("shard {primary}")
        } else {
            format!("all {} replicas of shard {primary}", set.len())
        };
        let mut fields = vec![
            ("op", Value::String(op.to_string())),
            ("name", Value::String(name.to_string())),
            ("shard", Value::Number(primary as f64)),
            ("addr", Value::String(topo.shards[primary].addr.clone())),
        ];
        if set.len() > 1 {
            fields.push(("replication", Value::Number(set.len() as f64)));
        }
        fields.push(("degraded", Value::Bool(true)));
        merge::err_with_kind(
            &format!(
                "{scope} ({}) is unreachable: {error}",
                topo.shards[primary].addr
            ),
            "unreachable",
            fields,
        )
    }

    /// Forward a per-name write (`seed`, `ingest`) to every backend in
    /// the name's replica set, concurrently. The reply the client sees is
    /// the first transport-acked one in ring order, tagged with its shard
    /// index; with R > 1 it also reports `replication`/`acked`, plus
    /// `degraded` + `repair_pending` when some replica missed the write
    /// (its line is buffered for replay — see [`Self::drain_repairs`]).
    /// Only when *no* replica acks does the client get an `unreachable`
    /// error; nothing is buffered then, because the client's own retry
    /// must stay the single writer (buffering too would double-apply).
    fn forward_per_name_write(&self, op: &str, name: &str, line: &str) -> String {
        let topo = self.topology();
        let r = self.replication_for(&topo);
        let set = topo.ring.successors(name, r);
        let idempotent = op != "ingest";
        let start = Instant::now();
        let results: Vec<Result<String, io::Error>> = if set.len() == 1 {
            let shard = &topo.shards[set[0]];
            shard.requests.inc();
            vec![self.exchange_with_retry(shard, line, idempotent)]
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = set
                    .iter()
                    .map(|&idx| {
                        let shard = &topo.shards[idx];
                        scope.spawn(move || {
                            shard.requests.inc();
                            self.exchange_with_retry(shard, line, idempotent)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err(io::Error::other("fan-out worker panicked")))
                    })
                    .collect()
            })
        };
        self.forward_us.record_since(start);
        let primary = set[0];
        let acked = results.iter().filter(|r| r.is_ok()).count();
        if acked > 0 {
            for (&idx, result) in set.iter().zip(&results) {
                match result {
                    Ok(_) if idx != primary => self.replica_writes.inc(),
                    Ok(_) => {}
                    Err(_) => self.queue_repair(&topo.shards[idx], line),
                }
            }
        }
        let winner = set
            .iter()
            .zip(&results)
            .find_map(|(&idx, result)| result.as_ref().ok().map(|reply| (idx, reply)));
        match winner {
            Some((idx, reply)) => match serde_json::parse_value(reply) {
                Ok(mut v) => {
                    merge::push_field(&mut v, "shard", Value::Number(idx as f64));
                    if set.len() > 1 {
                        merge::push_field(&mut v, "replication", Value::Number(set.len() as f64));
                        merge::push_field(&mut v, "acked", Value::Number(acked as f64));
                        if idx != primary {
                            merge::push_field(&mut v, "primary", Value::Number(primary as f64));
                        }
                        if acked < set.len() {
                            merge::push_field(&mut v, "degraded", Value::Bool(true));
                            merge::push_field(&mut v, "repair_pending", Value::Bool(true));
                        }
                    }
                    serde_json::to_string(&v).unwrap_or_else(|_| reply.clone())
                }
                // Relay unparseable replies verbatim: the client decides.
                Err(_) => reply.clone(),
            },
            None => {
                let error = results[0]
                    .as_ref()
                    .err()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "no replica answered".into());
                self.unreachable_reply(op, name, &topo, &set, &error)
            }
        }
    }

    /// Forward the per-name read (`resolve`) to the first replica that
    /// answers, trying the set in ring order with the members believed
    /// healthy first — a stale health mark only demotes a backend to the
    /// end of the order, it never makes a name unreadable. A reply from
    /// any backend but the primary counts as a failover read and is
    /// tagged `failover`/`primary` so clients can see (and operators can
    /// count) reads served by replicas.
    fn forward_per_name_read(&self, op: &str, name: &str, line: &str) -> String {
        let topo = self.topology();
        let r = self.replication_for(&topo);
        let set = topo.ring.successors(name, r);
        let primary = set[0];
        let mut ordered: Vec<usize> = set
            .iter()
            .copied()
            .filter(|&idx| topo.shards[idx].health.is_healthy())
            .collect();
        ordered.extend(
            set.iter()
                .copied()
                .filter(|&idx| !topo.shards[idx].health.is_healthy()),
        );
        let start = Instant::now();
        let mut last_error: Option<io::Error> = None;
        for idx in ordered {
            let shard = &topo.shards[idx];
            shard.requests.inc();
            match self.exchange_with_retry(shard, line, true) {
                Ok(reply) => {
                    self.forward_us.record_since(start);
                    if idx != primary {
                        self.failover_reads.inc();
                    }
                    return match serde_json::parse_value(&reply) {
                        Ok(mut v) => {
                            merge::push_field(&mut v, "shard", Value::Number(idx as f64));
                            if idx != primary {
                                merge::push_field(&mut v, "failover", Value::Bool(true));
                                merge::push_field(&mut v, "primary", Value::Number(primary as f64));
                            }
                            serde_json::to_string(&v).unwrap_or(reply)
                        }
                        Err(_) => reply,
                    };
                }
                Err(e) => last_error = Some(e),
            }
        }
        self.forward_us.record_since(start);
        let error = last_error
            .map(|e| e.to_string())
            .unwrap_or_else(|| "no replica answered".into());
        self.unreachable_reply(op, name, &topo, &set, &error)
    }

    /// Buffer a write line a dead replica missed, bounded by
    /// [`REPAIR_QUEUE_CAP`] (oldest dropped first, counted on
    /// `route.repair_dropped`).
    fn queue_repair(&self, shard: &Shard, line: &str) {
        let mut queue = shard.repair.lock();
        if queue.len() >= REPAIR_QUEUE_CAP {
            queue.pop_front();
            self.repair_dropped.inc();
        }
        queue.push_back(line.to_string());
    }

    /// Replay a recovered backend's buffered writes in arrival order.
    /// Stops at the first transport failure (the line goes back to the
    /// front of the queue for the next probe). A transport-acked replay
    /// whose reply is `ok:false` is dropped, not retried — replaying it
    /// again cannot change the answer; full convergence then needs a
    /// restore from the shared state directory or a re-seed.
    fn drain_repairs(&self, shard: &Shard) {
        loop {
            let Some(line) = shard.repair.lock().pop_front() else {
                return;
            };
            match shard.pool.exchange(&line) {
                Ok(_) => {
                    shard.health.mark_success(self.options.probe_interval);
                    self.replica_lag_repairs.inc();
                }
                Err((_, e)) => {
                    shard.repair.lock().push_front(line);
                    shard
                        .health
                        .mark_failure(&e.to_string(), self.options.probe_interval);
                    return;
                }
            }
        }
    }

    /// Broadcast `line` to every shard concurrently and collect the
    /// per-shard outcomes (parsed replies or failure messages).
    fn broadcast(&self, line: &str) -> Vec<ShardOutcome> {
        let topo = self.topology();
        self.broadcast_on(&topo, line)
    }

    /// [`Self::broadcast`] against a caller-held topology snapshot, so an
    /// op that also needs the matching ring (the snapshot merge) cannot
    /// race a concurrent `topology` swap between fan-out and merge.
    fn broadcast_on(&self, topo: &Topology, line: &str) -> Vec<ShardOutcome> {
        let start = Instant::now();
        let outcomes = thread::scope(|scope| {
            let handles: Vec<_> = topo
                .shards
                .iter()
                .enumerate()
                .map(|(index, shard)| {
                    let handle = scope.spawn(move || {
                        shard.requests.inc();
                        let result = match self.exchange_with_retry(shard, line, true) {
                            Ok(reply) => serde_json::parse_value(&reply)
                                .map_err(|e| format!("malformed reply: {e}")),
                            Err(e) => Err(e.to_string()),
                        };
                        ShardOutcome {
                            index,
                            addr: shard.addr.clone(),
                            result,
                        }
                    });
                    (index, shard.addr.clone(), handle)
                })
                .collect();
            handles
                .into_iter()
                // A worker that panicked (a poisoned pool lock, a bug in
                // the exchange path) degrades its own shard in the merge
                // instead of taking the whole router down with it.
                .map(|(index, addr, handle)| {
                    handle.join().unwrap_or_else(|_| ShardOutcome {
                        index,
                        addr,
                        result: Err("fan-out worker panicked".into()),
                    })
                })
                .collect::<Vec<_>>()
        });
        self.fanout_us.record_since(start);
        self.update_gauges();
        outcomes
    }

    /// The router's `health` reply: its own uptime and per-shard health,
    /// answered without contacting any backend (the prober and routed
    /// traffic keep the records fresh). A saturated or half-dead tier
    /// still answers its probes.
    fn health_line(&self) -> String {
        self.update_gauges();
        let topo = self.topology();
        let shards: Vec<Value> = topo
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut fields = vec![
                    ("shard", Value::Number(i as f64)),
                    ("addr", Value::String(s.addr.clone())),
                    ("healthy", Value::Bool(s.health.is_healthy())),
                    ("failures", Value::Number(f64::from(s.health.failures()))),
                ];
                let backlog = s.repair.lock().len();
                if backlog > 0 {
                    fields.push(("repair_backlog", Value::Number(backlog as f64)));
                }
                if let Some(e) = s.health.last_error() {
                    fields.push(("error", Value::String(e)));
                }
                merge::object(fields)
            })
            .collect();
        let healthy = topo.shards.iter().filter(|s| s.health.is_healthy()).count();
        merge::render(&merge::object(vec![
            ("ok", Value::Bool(true)),
            ("op", Value::String("health".into())),
            (
                "uptime_s",
                Value::Number(self.started.elapsed().as_secs_f64()),
            ),
            ("backends", Value::Number(topo.shards.len() as f64)),
            ("healthy", Value::Number(healthy as f64)),
            ("vnodes", Value::Number(topo.ring.vnodes() as f64)),
            (
                "replication",
                Value::Number(self.replication_for(&topo) as f64),
            ),
            ("shards", Value::Array(shards)),
        ]))
    }

    /// Swap the backend set. The old ring is asked to `persist` first so
    /// every name reaches the shared state directory; the new owners then
    /// restore names lazily on their next touch (`weber serve
    /// --state-dir` restores transparently). Shards for retained
    /// addresses are reused, keeping their pools, health records and
    /// counters.
    pub fn set_backends(&self, backends: Vec<String>) -> Result<String, RouterError> {
        validated(&backends)?;
        let persist_outcomes = self.broadcast(r#"{"op":"persist"}"#);
        let persisted: u64 = persist_outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .filter(|v| v.get("ok").and_then(Value::as_bool) == Some(true))
            .filter_map(|v| v.get("names").and_then(Value::as_u64))
            .sum();
        let shards: Vec<Arc<Shard>> = {
            let old = self.topology();
            backends
                .iter()
                .map(|addr| {
                    old.shards
                        .iter()
                        .find(|s| s.addr == *addr)
                        .cloned()
                        .unwrap_or_else(|| {
                            Arc::new(Shard::new(addr, &self.options, &self.registry))
                        })
                })
                .collect()
        };
        let ring = HashRing::new(&backends, self.options.vnodes);
        *self.topology.write() = Arc::new(Topology { ring, shards });
        self.update_gauges();
        let mut fields = vec![
            ("ok", Value::Bool(true)),
            ("op", Value::String("topology".into())),
            (
                "backends",
                Value::Array(backends.into_iter().map(Value::String).collect()),
            ),
            ("persisted", Value::Number(persisted as f64)),
        ];
        fields.extend(merge::degraded_fields(&persist_outcomes));
        Ok(merge::render(&merge::object(fields)))
    }

    fn handle_topology(&self, value: &Value) -> String {
        let Some(entries) = value.get("backends").and_then(Value::as_array) else {
            return protocol::err_response(&StreamError::InvalidRequest(
                "field 'backends' must be an array of addresses".into(),
            ));
        };
        let mut backends = Vec::with_capacity(entries.len());
        for entry in entries {
            match entry.as_str() {
                Some(addr) => backends.push(addr.to_string()),
                None => {
                    return protocol::err_response(&StreamError::InvalidRequest(
                        "backend addresses must be strings".into(),
                    ))
                }
            }
        }
        match self.set_backends(backends) {
            Ok(line) => line,
            Err(e) => protocol::err_response(&StreamError::InvalidRequest(e.0)),
        }
    }

    /// Probe every backend whose probe is due and refresh the gauges.
    /// Called on a cadence by [`Prober`]; callable directly in tests.
    pub fn probe_once(&self) {
        let topo = self.topology();
        let now = Instant::now();
        for shard in &topo.shards {
            if !shard.health.probe_due(now) {
                continue;
            }
            match shard.pool.exchange(r#"{"op":"health"}"#) {
                Ok(reply) => {
                    let ok = serde_json::parse_value(&reply)
                        .ok()
                        .and_then(|v| v.get("ok").and_then(Value::as_bool));
                    if ok == Some(true) {
                        shard.health.mark_success(self.options.probe_interval);
                    } else {
                        shard.health.mark_failure(
                            "health probe got a not-ok reply",
                            self.options.probe_interval,
                        );
                    }
                }
                Err((_, e)) => shard
                    .health
                    .mark_failure(&e.to_string(), self.options.probe_interval),
            }
        }
        // Recovered backends drain their write-repair backlog here: the
        // probe that found them healthy doubles as the replay trigger.
        for shard in &topo.shards {
            if shard.health.is_healthy() && !shard.repair.lock().is_empty() {
                self.drain_repairs(shard);
            }
        }
        self.update_gauges();
    }

    /// Handle one request line: route, fan out, or answer locally.
    /// Always produces exactly one response line.
    pub fn process_line(&self, line: &str) -> LineOutcome {
        self.requests.inc();
        let value = match serde_json::parse_value(line) {
            Ok(v) => v,
            Err(e) => {
                return LineOutcome::reply(protocol::err_response(&StreamError::Parse(
                    e.to_string(),
                )))
            }
        };
        let Some(op) = value.get("op").and_then(Value::as_str) else {
            return LineOutcome::reply(protocol::err_response(&StreamError::InvalidRequest(
                "missing field 'op'".into(),
            )));
        };
        let op = op.to_string();
        match op.as_str() {
            "seed" | "ingest" | "resolve" => {
                let Some(name) = value.get("name").and_then(Value::as_str) else {
                    return LineOutcome::reply(protocol::err_response(
                        &StreamError::InvalidRequest("field 'name' must be a string".into()),
                    ));
                };
                if op == "resolve" {
                    LineOutcome::reply(self.forward_per_name_read(&op, name, line))
                } else {
                    LineOutcome::reply(self.forward_per_name_write(&op, name, line))
                }
            }
            "health" => LineOutcome::reply(self.health_line()),
            "topology" => LineOutcome::reply(self.handle_topology(&value)),
            "snapshot" => {
                let topo = self.topology();
                let outcomes = self.broadcast_on(&topo, line);
                let r = self.replication_for(&topo);
                LineOutcome::reply(merge::merge_snapshot(&outcomes, &topo.ring, r))
            }
            "metrics" => {
                let outcomes = self.broadcast(line);
                LineOutcome::reply(merge::merge_metrics(self.registry.snapshot(), &outcomes))
            }
            "persist" | "restore" => {
                LineOutcome::reply(merge::merge_count(&op, &self.broadcast(line)))
            }
            "flush" => LineOutcome::reply(merge::merge_plain("flush", &self.broadcast(line))),
            "shutdown" => LineOutcome {
                response: merge::merge_plain("shutdown", &self.broadcast(line)),
                shutdown: true,
            },
            other => LineOutcome::reply(protocol::err_response(&StreamError::InvalidRequest(
                format!("unknown op '{other}'"),
            ))),
        }
    }
}

/// How often the probe thread wakes to check which probes are due.
const PROBE_TICK: Duration = Duration::from_millis(50);

/// Handle to the background probe thread; stops and joins on drop.
pub struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Prober {
    /// Stop and join the probe thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawn the background probe loop for `router`.
pub fn spawn_prober(router: Arc<Router>) -> Prober {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = thread::spawn(move || {
        while !flag.load(std::sync::atomic::Ordering::Relaxed) {
            router.probe_once();
            thread::sleep(PROBE_TICK);
        }
    });
    Prober {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect()
    }

    #[test]
    fn rejects_empty_and_duplicate_backends() {
        assert!(Router::new(Vec::new(), RouterOptions::default()).is_err());
        let dup = vec!["a:1".to_string(), "a:1".to_string()];
        assert!(Router::new(dup, RouterOptions::default()).is_err());
    }

    #[test]
    fn owner_is_stable_and_reported() {
        let router = Router::new(addrs(3), RouterOptions::default()).unwrap();
        let (idx, addr) = router.owner("cohen");
        assert!(idx < 3);
        assert_eq!(addr, addrs(3)[idx]);
        assert_eq!(router.owner("cohen").0, idx);
    }

    #[test]
    fn malformed_lines_and_unknown_ops_are_answered_locally() {
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        let out = router.process_line("not json");
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("parse"));
        let out = router.process_line(r#"{"op":"frobnicate"}"#);
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid-request"));
        let out = router.process_line(r#"{"op":"ingest","text":"no name"}"#);
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid-request"));
    }

    #[test]
    fn health_answers_without_backends() {
        // Nothing listens on these ports; health must still answer.
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        let out = router.process_line(r#"{"op":"health"}"#);
        assert!(!out.shutdown);
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("backends").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("shards").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn topology_op_validates_its_payload() {
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        for bad in [
            r#"{"op":"topology"}"#,
            r#"{"op":"topology","backends":[]}"#,
            r#"{"op":"topology","backends":[7]}"#,
            r#"{"op":"topology","backends":["a:1","a:1"]}"#,
        ] {
            let v = serde_json::parse_value(&router.process_line(bad).response).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid-request"));
        }
    }
}
