//! The router: one `weber serve`-shaped NDJSON surface over many backends.
//!
//! Per-name writes (`seed`, `ingest`, and the entity-table mutations
//! `same_as` / `constraint`) are forwarded to the `R` distinct
//! backends the [`HashRing`] says hold the name (`--replication R`,
//! default 1), with bounded retries and the answering shard's index
//! appended to the reply; a write acked by fewer than R replicas is
//! marked degraded and the missed lines are buffered per backend for
//! replay when it recovers (write repair). Per-name reads (`resolve`,
//! named `entities`) try the replica set in ring order — healthy
//! members first — and fail over until one answers. Fan-out ops
//! (`snapshot`, name-less `entities`, `metrics`, `persist`, `restore`,
//! `flush`, `shutdown`) are broadcast to every
//! backend concurrently and merged ([`crate::merge`]) — dead backends
//! degrade the answer rather than fail it (and under replication a
//! snapshot with fewer than R backends down is not degraded at all). Two
//! ops never touch a backend: `health` reports the router's own view of
//! the tier, and `topology` swaps the backend set at runtime (persisting
//! the old ring first so names — and their replicas — migrate through
//! the shared state directory).
//!
//! Every backend exchange rides the shared [`OutboundPool`] reactor, so
//! forwarding is a *state machine*, not a parked thread: per-name ops
//! have an asynchronous spine ([`Router::process_line_deferred`]) where
//! retries, write fan-out and read failover advance from pool completion
//! callbacks, and [`Router::process_line`] is the blocking wrapper
//! (submit, wait on a channel) for the stdio front end, the threaded
//! front end, probes and tests. One stalled backend therefore stalls
//! only the exchanges addressed to it — never a front-end worker, and
//! never requests owned by healthy shards.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde::Value;
use weber_obs::{Counter, Gauge, Histogram, Registry};
use weber_stream::protocol;
use weber_stream::StreamError;

use crate::health::HealthState;
use crate::merge::{self, ShardOutcome};
use crate::pool::{OutboundPool, Phase, PoolOptions};
use crate::ring::{fnv1a, HashRing};

/// Lines buffered per backend for write repair before the oldest is
/// dropped (and counted on `route.repair_dropped`). Bounds memory during
/// a long outage; a drop means that backend needs a re-seed or a restore
/// from the shared state directory to fully converge.
const REPAIR_QUEUE_CAP: usize = 4096;

/// Tuning knobs of the routing tier.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Virtual points per backend on the ring (placement smoothing — not
    /// the replication factor; see [`replication`](Self::replication)).
    pub vnodes: usize,
    /// Copies of every name: each write goes to the first `replication`
    /// distinct backends clockwise from the name's ring position, and
    /// reads fail over across the same set. 1 (the default) is plain
    /// sharding; values above the backend count are clamped to it.
    pub replication: usize,
    /// Extra forwarding attempts after the first failure (idempotent ops;
    /// `ingest` only re-attempts failures that provably sent nothing).
    pub retries: usize,
    /// Outbound connection slots kept per backend.
    pub pool_capacity: usize,
    /// TCP connect timeout towards a backend.
    pub connect_timeout: Duration,
    /// Per-exchange read/write timeout towards a backend.
    pub io_timeout: Duration,
    /// Base health-probe cadence (failures back off exponentially from
    /// this).
    pub probe_interval: Duration,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            vnodes: 64,
            replication: 1,
            retries: 2,
            pool_capacity: 2,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(30),
            probe_interval: Duration::from_secs(1),
        }
    }
}

/// A bad router configuration or topology request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterError(pub String);

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RouterError {}

/// One backend as the router sees it: its health record, repair backlog
/// and per-backend counters (named by address, so they survive topology
/// changes that renumber ring indices). Connections live in the shared
/// [`OutboundPool`], keyed by this shard's address.
struct Shard {
    addr: String,
    health: HealthState,
    /// Write lines this backend missed while its replica peers acked —
    /// replayed in arrival order once it is healthy again. Keyed to the
    /// address (like the counters), so the backlog survives topology
    /// changes that renumber ring indices.
    repair: Mutex<VecDeque<String>>,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    retries: Arc<Counter>,
}

impl Shard {
    fn new(addr: &str, registry: &Registry) -> Self {
        Shard {
            addr: addr.to_string(),
            health: HealthState::new(),
            repair: Mutex::new(VecDeque::new()),
            requests: registry.counter(&format!("route.backend.{addr}.requests")),
            errors: registry.counter(&format!("route.backend.{addr}.errors")),
            retries: registry.counter(&format!("route.backend.{addr}.retries")),
        }
    }
}

/// An immutable ring + shard set; swapped atomically on topology change.
struct Topology {
    ring: HashRing,
    shards: Vec<Arc<Shard>>,
}

/// What [`Router::process_line`] did with one request line.
pub struct LineOutcome {
    /// The single NDJSON response line.
    pub response: String,
    /// True when the request asked the whole tier to stop.
    pub shutdown: bool,
}

impl LineOutcome {
    fn reply(response: String) -> Self {
        LineOutcome {
            response,
            shutdown: false,
        }
    }
}

/// Completion for one fully-routed line (reply tagged and merged).
pub type LineCallback = Box<dyn FnOnce(LineOutcome) + Send>;

/// Completion for one backend exchange after retries.
type ExchangeDone = Box<dyn FnOnce(Result<String, io::Error>) + Send>;

/// Completion for one forwarded per-name op's finished reply line.
type ReplyDone = Box<dyn FnOnce(String) + Send>;

/// The routing tier's state and request loop body. Cheap to share: the
/// public handle wraps one [`Arc`]'d core, which asynchronous forwarding
/// callbacks keep alive while their exchanges are in flight.
pub struct Router {
    inner: Arc<Inner>,
}

struct Inner {
    topology: RwLock<Arc<Topology>>,
    options: RouterOptions,
    registry: Arc<Registry>,
    /// The shared outbound reactor every backend exchange rides.
    pool: OutboundPool,
    started: Instant,
    requests: Arc<Counter>,
    retries: Arc<Counter>,
    errors: Arc<Counter>,
    /// Successful write acks on non-primary replicas.
    replica_writes: Arc<Counter>,
    /// Reads answered by a replica other than the name's primary.
    failover_reads: Arc<Counter>,
    /// Buffered write lines successfully replayed to recovered backends.
    replica_lag_repairs: Arc<Counter>,
    /// Buffered write lines dropped because a backend's repair queue
    /// overflowed during its outage.
    repair_dropped: Arc<Counter>,
    forward_us: Arc<Histogram>,
    fanout_us: Arc<Histogram>,
    ring_size: Arc<Gauge>,
    healthy_backends: Arc<Gauge>,
}

fn validated(backends: &[String]) -> Result<(), RouterError> {
    if backends.is_empty() {
        return Err(RouterError("at least one backend is required".into()));
    }
    for (i, addr) in backends.iter().enumerate() {
        if addr.is_empty() {
            return Err(RouterError("backend addresses must be non-empty".into()));
        }
        if backends[..i].contains(addr) {
            return Err(RouterError(format!("backend '{addr}' is listed twice")));
        }
    }
    Ok(())
}

impl Router {
    /// A router over `backends` (non-empty, no duplicates). Backends are
    /// not contacted here — the first probe or routed request finds out
    /// who is alive.
    pub fn new(backends: Vec<String>, options: RouterOptions) -> Result<Self, RouterError> {
        validated(&backends)?;
        let registry = Arc::new(Registry::new());
        let pool = OutboundPool::new(PoolOptions {
            slots_per_backend: options.pool_capacity,
            connect_timeout: options.connect_timeout,
            io_timeout: options.io_timeout,
            ..PoolOptions::default()
        })
        .map_err(|e| RouterError(format!("cannot start the outbound reactor: {e}")))?;
        let shards = backends
            .iter()
            .map(|addr| Arc::new(Shard::new(addr, &registry)))
            .collect();
        let ring = HashRing::new(&backends, options.vnodes);
        let inner = Inner {
            topology: RwLock::new(Arc::new(Topology { ring, shards })),
            started: Instant::now(),
            requests: registry.counter("route.requests"),
            retries: registry.counter("route.retries"),
            errors: registry.counter("route.errors"),
            replica_writes: registry.counter("route.replica_writes"),
            failover_reads: registry.counter("route.failover_reads"),
            replica_lag_repairs: registry.counter("route.replica_lag_repairs"),
            repair_dropped: registry.counter("route.repair_dropped"),
            forward_us: registry.histogram("route.forward_us"),
            fanout_us: registry.histogram("route.fanout_us"),
            ring_size: registry.gauge("route.ring_size"),
            healthy_backends: registry.gauge("route.healthy_backends"),
            registry,
            options,
            pool,
        };
        inner.update_gauges();
        Ok(Router {
            inner: Arc::new(inner),
        })
    }

    /// Current backend addresses, in ring-index order.
    pub fn backends(&self) -> Vec<String> {
        self.inner.topology().ring.backends().to_vec()
    }

    /// Which backend (index, address) owns `name` (the primary of its
    /// replica set).
    pub fn owner(&self, name: &str) -> (usize, String) {
        let topo = self.inner.topology();
        let idx = topo.ring.owner(name);
        (idx, topo.ring.backends()[idx].clone())
    }

    /// `name`'s replica set — the backends a write goes to and a read may
    /// be served from, primary first.
    pub fn replica_set(&self, name: &str) -> Vec<usize> {
        let topo = self.inner.topology();
        let r = self.inner.replication_for(&topo);
        topo.ring.successors(name, r)
    }

    /// The router's own metrics registry (the `metrics` op merges this
    /// with every backend's snapshot).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Shared handle to the same registry, for front ends that outlive
    /// a borrow (the event loop surfaces its `net.*` metrics there).
    pub fn registry_handle(&self) -> Arc<Registry> {
        Arc::clone(&self.inner.registry)
    }

    /// Swap the backend set. The old ring is asked to `persist` first so
    /// every name reaches the shared state directory; the new owners then
    /// restore names lazily on their next touch (`weber serve
    /// --state-dir` restores transparently). Shards for retained
    /// addresses are reused, keeping their health records, repair
    /// backlogs and counters; outbound connections to dropped backends
    /// are torn down.
    pub fn set_backends(&self, backends: Vec<String>) -> Result<String, RouterError> {
        self.inner.set_backends(backends)
    }

    /// Probe every backend whose probe is due and refresh the gauges.
    /// Called on a cadence by [`Prober`]; callable directly in tests.
    pub fn probe_once(&self) {
        self.inner.probe_once();
    }

    /// Handle one request line and block until its reply is ready:
    /// the synchronous surface for the stdio front end, the threaded
    /// front end, and tests. Always produces exactly one response line.
    ///
    /// Per-name ops park only the *calling* thread — the exchanges they
    /// fan out ride the outbound reactor. Must not be called from a pool
    /// completion callback (it would wait on itself).
    pub fn process_line(&self, line: &str) -> LineOutcome {
        match dispatch(&self.inner, line) {
            Routed::Done(outcome) => outcome,
            Routed::Write { op, name } => {
                let (tx, rx) = mpsc::channel();
                forward_write(
                    &self.inner,
                    &op,
                    &name,
                    line,
                    Box::new(move |reply| {
                        let _ = tx.send(reply);
                    }),
                );
                LineOutcome::reply(wait_for_reply(rx))
            }
            Routed::Read { op, name } => {
                let (tx, rx) = mpsc::channel();
                forward_read(
                    &self.inner,
                    &op,
                    &name,
                    line,
                    Box::new(move |reply| {
                        let _ = tx.send(reply);
                    }),
                );
                LineOutcome::reply(wait_for_reply(rx))
            }
        }
    }

    /// Handle one request line without blocking the caller: per-name ops
    /// return immediately and `done` fires from the outbound reactor when
    /// the forwarded exchange (retries, fan-out, failover included)
    /// resolves. This is the event front end's path — the server reactor
    /// hands a line over and goes back to its sockets.
    ///
    /// Lines that never touch a backend (parse errors, `health`,
    /// malformed per-name ops) complete `done` before returning. Fan-out
    /// ops (`snapshot`, `shutdown`, …) block the calling thread for the
    /// broadcast, exactly like [`Self::process_line`] — the event front
    /// end classifies those onto worker threads, never onto its reactor.
    pub fn process_line_deferred(&self, line: &str, done: LineCallback) {
        match dispatch(&self.inner, line) {
            Routed::Done(outcome) => done(outcome),
            Routed::Write { op, name } => forward_write(
                &self.inner,
                &op,
                &name,
                line,
                Box::new(move |reply| done(LineOutcome::reply(reply))),
            ),
            Routed::Read { op, name } => forward_read(
                &self.inner,
                &op,
                &name,
                line,
                Box::new(move |reply| done(LineOutcome::reply(reply))),
            ),
        }
    }
}

/// Block on a forwarded reply; a dropped sender (a panicking callback, a
/// stopping pool) still yields one well-formed error line.
fn wait_for_reply(rx: mpsc::Receiver<String>) -> String {
    rx.recv().unwrap_or_else(|_| {
        protocol::err_response(&StreamError::InvalidRequest(
            "the routing tier dropped this request while shutting down".into(),
        ))
    })
}

/// Where one parsed line goes next.
enum Routed {
    /// Answered without any asynchronous forwarding.
    Done(LineOutcome),
    /// A per-name write (`seed`, `ingest`) for the async fan-out path.
    Write { op: String, name: String },
    /// The per-name read (`resolve`) for the async failover path.
    Read { op: String, name: String },
}

/// Parse and dispatch one line: local answers and (blocking) broadcasts
/// resolve here; per-name ops come back as [`Routed::Write`]/[`Routed::Read`]
/// for the caller to drive synchronously or asynchronously.
fn dispatch(inner: &Arc<Inner>, line: &str) -> Routed {
    inner.requests.inc();
    let value = match serde_json::parse_value(line) {
        Ok(v) => v,
        Err(e) => {
            return Routed::Done(LineOutcome::reply(protocol::err_response(
                &StreamError::Parse(e.to_string()),
            )))
        }
    };
    let Some(op) = value.get("op").and_then(Value::as_str) else {
        return Routed::Done(LineOutcome::reply(protocol::err_response(
            &StreamError::InvalidRequest("missing field 'op'".into()),
        )));
    };
    let op = op.to_string();
    match op.as_str() {
        "seed" | "ingest" | "resolve" | "same_as" | "constraint" => {
            let Some(name) = value.get("name").and_then(Value::as_str) else {
                return Routed::Done(LineOutcome::reply(protocol::err_response(
                    &StreamError::InvalidRequest("field 'name' must be a string".into()),
                )));
            };
            let name = name.to_string();
            if op == "resolve" {
                Routed::Read { op, name }
            } else {
                // `same_as` and `constraint` mutate the name's entity
                // table, so they take the write path: fan out to every
                // replica, buffer misses for repair. Both are idempotent
                // (re-asserting a link or re-adding a constraint is a
                // no-op), so transport failures retry freely.
                Routed::Write { op, name }
            }
        }
        // A named `entities` is a read of that name's replica set, with
        // failover like `resolve`. The name-less form is a fan-out: every
        // backend reports the tables it holds and the merge keeps one
        // copy per name (replica-rank preference), so a replicated tier
        // never lists an entity twice.
        "entities" => match value.get("name") {
            Some(v) if v.as_str().is_some() => Routed::Read {
                op,
                name: v.as_str().unwrap().to_string(),
            },
            Some(v) if !v.is_null() => Routed::Done(LineOutcome::reply(protocol::err_response(
                &StreamError::InvalidRequest("field 'name' must be a string".into()),
            ))),
            _ => {
                let topo = inner.topology();
                let outcomes = broadcast_on(inner, &topo, line);
                let r = inner.replication_for(&topo);
                Routed::Done(LineOutcome::reply(merge::merge_entities(
                    &outcomes, &topo.ring, r,
                )))
            }
        },
        "health" => Routed::Done(LineOutcome::reply(inner.health_line())),
        "topology" => Routed::Done(LineOutcome::reply(inner.handle_topology(&value))),
        "snapshot" => {
            let topo = inner.topology();
            let outcomes = broadcast_on(inner, &topo, line);
            let r = inner.replication_for(&topo);
            Routed::Done(LineOutcome::reply(merge::merge_snapshot(
                &outcomes, &topo.ring, r,
            )))
        }
        "metrics" => {
            let outcomes = broadcast(inner, line);
            Routed::Done(LineOutcome::reply(merge::merge_metrics(
                inner.registry.snapshot(),
                &outcomes,
            )))
        }
        "persist" | "restore" => Routed::Done(LineOutcome::reply(merge::merge_count(
            &op,
            &broadcast(inner, line),
        ))),
        "flush" => Routed::Done(LineOutcome::reply(merge::merge_plain(
            "flush",
            &broadcast(inner, line),
        ))),
        "shutdown" => Routed::Done(LineOutcome {
            response: merge::merge_plain("shutdown", &broadcast(inner, line)),
            shutdown: true,
        }),
        other => Routed::Done(LineOutcome::reply(protocol::err_response(
            &StreamError::InvalidRequest(format!("unknown op '{other}'")),
        ))),
    }
}

/// One exchange against `shard` with bounded retries, advanced entirely
/// from pool completion callbacks. Idempotent ops retry any transport
/// failure on a fresh connection; non-idempotent ops (`ingest`) retry
/// only [`Phase::Connect`] failures — an exchange-phase failure may
/// already have been applied, and re-sending it could assign the
/// document twice.
fn exchange_with_retry(
    inner: &Arc<Inner>,
    shard: Arc<Shard>,
    key: Option<u64>,
    line: String,
    idempotent: bool,
    attempt: usize,
    done: ExchangeDone,
) {
    let inner_cb = Arc::clone(inner);
    let submit_line = line.clone();
    let addr = shard.addr.clone();
    inner.pool.submit(
        &addr,
        key,
        submit_line,
        Box::new(move |result| match result {
            Ok(reply) => {
                shard.health.mark_success(inner_cb.options.probe_interval);
                done(Ok(reply));
            }
            Err((phase, e)) => {
                shard
                    .health
                    .mark_failure(&e.to_string(), inner_cb.options.probe_interval);
                if phase == Phase::Exchange {
                    // A mid-stream death usually strands every warm
                    // connection from before the restart; drop the idle
                    // ones so the retry dials fresh.
                    inner_cb.pool.invalidate(&shard.addr);
                }
                let retryable = idempotent || phase == Phase::Connect;
                if retryable && attempt < inner_cb.options.retries {
                    shard.retries.inc();
                    inner_cb.retries.inc();
                    let again = Arc::clone(&inner_cb);
                    exchange_with_retry(&again, shard, key, line, idempotent, attempt + 1, done);
                } else {
                    shard.errors.inc();
                    inner_cb.errors.inc();
                    inner_cb.update_gauges();
                    done(Err(e));
                }
            }
        }),
    );
}

/// The in-progress state of one replicated write fan-out: results land
/// here from completion callbacks (in any order), and the last one in
/// assembles the client reply.
struct WriteJoin {
    results: Vec<Option<Result<String, io::Error>>>,
    remaining: usize,
    finish: Option<(WriteCtx, ReplyDone)>,
}

struct WriteCtx {
    op: String,
    name: String,
    line: String,
    topo: Arc<Topology>,
    set: Vec<usize>,
    start: Instant,
}

/// Forward a per-name write (`seed`, `ingest`) to every backend in the
/// name's replica set, concurrently on the outbound reactor. The reply
/// the client sees is the first transport-acked one in ring order,
/// tagged with its shard index; with R > 1 it also reports
/// `replication`/`acked`, plus `degraded` + `repair_pending` when some
/// replica missed the write (its line is buffered for replay — see
/// [`Inner::drain_repairs`]). Only when *no* replica acks does the
/// client get an `unreachable` error; nothing is buffered then, because
/// the client's own retry must stay the single writer (buffering too
/// would double-apply).
fn forward_write(inner: &Arc<Inner>, op: &str, name: &str, line: &str, done: ReplyDone) {
    let topo = inner.topology();
    let r = inner.replication_for(&topo);
    let set = topo.ring.successors(name, r);
    let idempotent = op != "ingest";
    let key = Some(fnv1a(name.as_bytes()));
    let ctx = WriteCtx {
        op: op.to_string(),
        name: name.to_string(),
        line: line.to_string(),
        topo: Arc::clone(&topo),
        set: set.clone(),
        start: Instant::now(),
    };
    let join = Arc::new(Mutex::new(WriteJoin {
        results: (0..set.len()).map(|_| None).collect(),
        remaining: set.len(),
        finish: Some((ctx, done)),
    }));
    for (pos, &idx) in set.iter().enumerate() {
        let shard = Arc::clone(&topo.shards[idx]);
        shard.requests.inc();
        let join = Arc::clone(&join);
        let inner_cb = Arc::clone(inner);
        exchange_with_retry(
            inner,
            shard,
            key,
            line.to_string(),
            idempotent,
            0,
            Box::new(move |result| {
                let finished = {
                    let mut join = join.lock();
                    join.results[pos] = Some(result);
                    join.remaining -= 1;
                    if join.remaining == 0 {
                        let results: Vec<Result<String, io::Error>> =
                            join.results.drain(..).map(|r| r.unwrap()).collect();
                        join.finish.take().map(|(ctx, done)| (ctx, done, results))
                    } else {
                        None
                    }
                };
                if let Some((ctx, done, results)) = finished {
                    done(finish_write(&inner_cb, ctx, results));
                }
            }),
        );
    }
}

/// Assemble the client reply once every replica of a write resolved.
fn finish_write(
    inner: &Arc<Inner>,
    ctx: WriteCtx,
    results: Vec<Result<String, io::Error>>,
) -> String {
    inner.forward_us.record_since(ctx.start);
    let primary = ctx.set[0];
    let acked = results.iter().filter(|r| r.is_ok()).count();
    if acked > 0 {
        for (&idx, result) in ctx.set.iter().zip(&results) {
            match result {
                Ok(_) if idx != primary => inner.replica_writes.inc(),
                Ok(_) => {}
                Err(_) => inner.queue_repair(&ctx.topo.shards[idx], &ctx.line),
            }
        }
    }
    let winner = ctx
        .set
        .iter()
        .zip(&results)
        .find_map(|(&idx, result)| result.as_ref().ok().map(|reply| (idx, reply)));
    match winner {
        Some((idx, reply)) => match serde_json::parse_value(reply) {
            Ok(mut v) => {
                merge::push_field(&mut v, "shard", Value::Number(idx as f64));
                if ctx.set.len() > 1 {
                    merge::push_field(&mut v, "replication", Value::Number(ctx.set.len() as f64));
                    merge::push_field(&mut v, "acked", Value::Number(acked as f64));
                    if idx != primary {
                        merge::push_field(&mut v, "primary", Value::Number(primary as f64));
                    }
                    if acked < ctx.set.len() {
                        merge::push_field(&mut v, "degraded", Value::Bool(true));
                        merge::push_field(&mut v, "repair_pending", Value::Bool(true));
                    }
                }
                serde_json::to_string(&v).unwrap_or_else(|_| reply.clone())
            }
            // Relay unparseable replies verbatim: the client decides.
            Err(_) => reply.clone(),
        },
        None => {
            let error = results[0]
                .as_ref()
                .err()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no replica answered".into());
            inner.unreachable_reply(&ctx.op, &ctx.name, &ctx.topo, &ctx.set, &error)
        }
    }
}

/// The in-progress state of one failover read: which replica to try
/// next, and the last transport error seen.
struct ReadChase {
    op: String,
    name: String,
    line: String,
    topo: Arc<Topology>,
    set: Vec<usize>,
    ordered: Vec<usize>,
    primary: usize,
    start: Instant,
    pos: usize,
    last_error: Option<io::Error>,
    done: ReplyDone,
}

/// Forward the per-name read (`resolve`) to the first replica that
/// answers, trying the set in ring order with the members believed
/// healthy first — a stale health mark only demotes a backend to the
/// end of the order, it never makes a name unreadable. Each attempt is
/// one asynchronous exchange; its completion either tags and returns the
/// reply or advances the chase to the next replica. A reply from any
/// backend but the primary counts as a failover read and is tagged
/// `failover`/`primary` so clients can see (and operators can count)
/// reads served by replicas.
fn forward_read(inner: &Arc<Inner>, op: &str, name: &str, line: &str, done: ReplyDone) {
    let topo = inner.topology();
    let r = inner.replication_for(&topo);
    let set = topo.ring.successors(name, r);
    let primary = set[0];
    let mut ordered: Vec<usize> = set
        .iter()
        .copied()
        .filter(|&idx| topo.shards[idx].health.is_healthy())
        .collect();
    ordered.extend(
        set.iter()
            .copied()
            .filter(|&idx| !topo.shards[idx].health.is_healthy()),
    );
    read_next(
        inner,
        ReadChase {
            op: op.to_string(),
            name: name.to_string(),
            line: line.to_string(),
            topo,
            set,
            ordered,
            primary,
            start: Instant::now(),
            pos: 0,
            last_error: None,
            done,
        },
    );
}

fn read_next(inner: &Arc<Inner>, mut chase: ReadChase) {
    if chase.pos >= chase.ordered.len() {
        inner.forward_us.record_since(chase.start);
        let error = chase
            .last_error
            .map(|e| e.to_string())
            .unwrap_or_else(|| "no replica answered".into());
        let reply =
            inner.unreachable_reply(&chase.op, &chase.name, &chase.topo, &chase.set, &error);
        (chase.done)(reply);
        return;
    }
    let idx = chase.ordered[chase.pos];
    let shard = Arc::clone(&chase.topo.shards[idx]);
    shard.requests.inc();
    let key = Some(fnv1a(chase.name.as_bytes()));
    let line = chase.line.clone();
    let inner_cb = Arc::clone(inner);
    exchange_with_retry(
        inner,
        shard,
        key,
        line,
        true,
        0,
        Box::new(move |result| match result {
            Ok(reply) => {
                inner_cb.forward_us.record_since(chase.start);
                if idx != chase.primary {
                    inner_cb.failover_reads.inc();
                }
                let tagged = match serde_json::parse_value(&reply) {
                    Ok(mut v) => {
                        merge::push_field(&mut v, "shard", Value::Number(idx as f64));
                        if idx != chase.primary {
                            merge::push_field(&mut v, "failover", Value::Bool(true));
                            merge::push_field(
                                &mut v,
                                "primary",
                                Value::Number(chase.primary as f64),
                            );
                        }
                        serde_json::to_string(&v).unwrap_or(reply)
                    }
                    Err(_) => reply,
                };
                (chase.done)(tagged);
            }
            Err(e) => {
                chase.last_error = Some(e);
                chase.pos += 1;
                read_next(&inner_cb, chase);
            }
        }),
    );
}

/// Broadcast `line` to every shard concurrently and collect the
/// per-shard outcomes (parsed replies or failure messages). Blocks the
/// calling thread for the slowest backend (bounded by the pool's
/// timeouts) — callers are worker, stdio or probe threads, never the
/// outbound reactor.
fn broadcast(inner: &Arc<Inner>, line: &str) -> Vec<ShardOutcome> {
    let topo = inner.topology();
    broadcast_on(inner, &topo, line)
}

/// [`broadcast`] against a caller-held topology snapshot, so an op that
/// also needs the matching ring (the snapshot merge) cannot race a
/// concurrent `topology` swap between fan-out and merge.
fn broadcast_on(inner: &Arc<Inner>, topo: &Arc<Topology>, line: &str) -> Vec<ShardOutcome> {
    let start = Instant::now();
    let (tx, rx) = mpsc::channel();
    for (index, shard) in topo.shards.iter().enumerate() {
        shard.requests.inc();
        let tx = tx.clone();
        let addr = shard.addr.clone();
        exchange_with_retry(
            inner,
            Arc::clone(shard),
            None,
            line.to_string(),
            true,
            0,
            Box::new(move |result| {
                let outcome = ShardOutcome {
                    index,
                    addr,
                    result: match result {
                        Ok(reply) => serde_json::parse_value(&reply)
                            .map_err(|e| format!("malformed reply: {e}")),
                        Err(e) => Err(e.to_string()),
                    },
                };
                let _ = tx.send(outcome);
            }),
        );
    }
    drop(tx);
    // A callback that died with the pool simply never sends; degrade its
    // shard instead of hanging or panicking the broadcast.
    let mut outcomes: Vec<ShardOutcome> = rx.iter().collect();
    let mut answered: Vec<bool> = vec![false; topo.shards.len()];
    for outcome in &outcomes {
        answered[outcome.index] = true;
    }
    for (index, shard) in topo.shards.iter().enumerate() {
        if !answered[index] {
            outcomes.push(ShardOutcome {
                index,
                addr: shard.addr.clone(),
                result: Err("the outbound pool dropped this exchange".into()),
            });
        }
    }
    outcomes.sort_by_key(|o| o.index);
    inner.fanout_us.record_since(start);
    inner.update_gauges();
    outcomes
}

impl Inner {
    fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.read())
    }

    /// The effective replication factor for `topo`: at least 1, never
    /// more than the tier has backends.
    fn replication_for(&self, topo: &Topology) -> usize {
        self.options.replication.clamp(1, topo.ring.len())
    }

    fn update_gauges(&self) {
        let topo = self.topology();
        self.ring_size.set(topo.shards.len() as i64);
        let healthy = topo.shards.iter().filter(|s| s.health.is_healthy()).count();
        self.healthy_backends.set(healthy as i64);
    }

    /// The `unreachable` error for a per-name op whose whole replica set
    /// failed: the same shape the unreplicated router produced, keyed on
    /// the primary.
    fn unreachable_reply(
        &self,
        op: &str,
        name: &str,
        topo: &Topology,
        set: &[usize],
        error: &str,
    ) -> String {
        let primary = set[0];
        let scope = if set.len() == 1 {
            format!("shard {primary}")
        } else {
            format!("all {} replicas of shard {primary}", set.len())
        };
        let mut fields = vec![
            ("op", Value::String(op.to_string())),
            ("name", Value::String(name.to_string())),
            ("shard", Value::Number(primary as f64)),
            ("addr", Value::String(topo.shards[primary].addr.clone())),
        ];
        if set.len() > 1 {
            fields.push(("replication", Value::Number(set.len() as f64)));
        }
        fields.push(("degraded", Value::Bool(true)));
        merge::err_with_kind(
            &format!(
                "{scope} ({}) is unreachable: {error}",
                topo.shards[primary].addr
            ),
            "unreachable",
            fields,
        )
    }

    /// Buffer a write line a dead replica missed, bounded by
    /// [`REPAIR_QUEUE_CAP`] (oldest dropped first, counted on
    /// `route.repair_dropped`).
    fn queue_repair(&self, shard: &Shard, line: &str) {
        let mut queue = shard.repair.lock();
        if queue.len() >= REPAIR_QUEUE_CAP {
            queue.pop_front();
            self.repair_dropped.inc();
        }
        queue.push_back(line.to_string());
    }

    /// Replay a recovered backend's buffered writes in arrival order.
    /// Stops at the first transport failure (the line goes back to the
    /// front of the queue for the next probe). A transport-acked replay
    /// whose reply is `ok:false` is dropped, not retried — replaying it
    /// again cannot change the answer; full convergence then needs a
    /// restore from the shared state directory or a re-seed. Runs on the
    /// probe thread, blocking on each replay so order is preserved.
    fn drain_repairs(&self, shard: &Shard) {
        loop {
            let Some(line) = shard.repair.lock().pop_front() else {
                return;
            };
            match self.pool.exchange(&shard.addr, None, &line) {
                Ok(_) => {
                    shard.health.mark_success(self.options.probe_interval);
                    self.replica_lag_repairs.inc();
                }
                Err((_, e)) => {
                    shard.repair.lock().push_front(line);
                    shard
                        .health
                        .mark_failure(&e.to_string(), self.options.probe_interval);
                    return;
                }
            }
        }
    }

    /// The router's `health` reply: its own uptime and per-shard health,
    /// answered without contacting any backend (the prober and routed
    /// traffic keep the records fresh). A saturated or half-dead tier
    /// still answers its probes — cheap enough that the event front end
    /// answers it straight from its reactor.
    fn health_line(&self) -> String {
        self.update_gauges();
        let topo = self.topology();
        let shards: Vec<Value> = topo
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut fields = vec![
                    ("shard", Value::Number(i as f64)),
                    ("addr", Value::String(s.addr.clone())),
                    ("healthy", Value::Bool(s.health.is_healthy())),
                    ("failures", Value::Number(f64::from(s.health.failures()))),
                ];
                let backlog = s.repair.lock().len();
                if backlog > 0 {
                    fields.push(("repair_backlog", Value::Number(backlog as f64)));
                }
                if let Some(e) = s.health.last_error() {
                    fields.push(("error", Value::String(e)));
                }
                merge::object(fields)
            })
            .collect();
        let healthy = topo.shards.iter().filter(|s| s.health.is_healthy()).count();
        merge::render(&merge::object(vec![
            ("ok", Value::Bool(true)),
            ("op", Value::String("health".into())),
            (
                "uptime_s",
                Value::Number(self.started.elapsed().as_secs_f64()),
            ),
            ("backends", Value::Number(topo.shards.len() as f64)),
            ("healthy", Value::Number(healthy as f64)),
            ("vnodes", Value::Number(topo.ring.vnodes() as f64)),
            (
                "replication",
                Value::Number(self.replication_for(&topo) as f64),
            ),
            ("shards", Value::Array(shards)),
        ]))
    }

    fn set_backends(self: &Arc<Self>, backends: Vec<String>) -> Result<String, RouterError> {
        validated(&backends)?;
        let persist_outcomes = broadcast(self, r#"{"op":"persist"}"#);
        let persisted: u64 = persist_outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .filter(|v| v.get("ok").and_then(Value::as_bool) == Some(true))
            .filter_map(|v| v.get("names").and_then(Value::as_u64))
            .sum();
        let shards: Vec<Arc<Shard>> = {
            let old = self.topology();
            backends
                .iter()
                .map(|addr| {
                    old.shards
                        .iter()
                        .find(|s| s.addr == *addr)
                        .cloned()
                        .unwrap_or_else(|| Arc::new(Shard::new(addr, &self.registry)))
                })
                .collect()
        };
        let ring = HashRing::new(&backends, self.options.vnodes);
        *self.topology.write() = Arc::new(Topology { ring, shards });
        // Tear down pooled connections to backends that left the ring
        // (exchanges still pending towards them fail over normally).
        self.pool.retain(&backends);
        self.update_gauges();
        let mut fields = vec![
            ("ok", Value::Bool(true)),
            ("op", Value::String("topology".into())),
            (
                "backends",
                Value::Array(backends.into_iter().map(Value::String).collect()),
            ),
            ("persisted", Value::Number(persisted as f64)),
        ];
        fields.extend(merge::degraded_fields(&persist_outcomes));
        Ok(merge::render(&merge::object(fields)))
    }

    fn handle_topology(self: &Arc<Self>, value: &Value) -> String {
        let Some(entries) = value.get("backends").and_then(Value::as_array) else {
            return protocol::err_response(&StreamError::InvalidRequest(
                "field 'backends' must be an array of addresses".into(),
            ));
        };
        let mut backends = Vec::with_capacity(entries.len());
        for entry in entries {
            match entry.as_str() {
                Some(addr) => backends.push(addr.to_string()),
                None => {
                    return protocol::err_response(&StreamError::InvalidRequest(
                        "backend addresses must be strings".into(),
                    ))
                }
            }
        }
        match self.set_backends(backends) {
            Ok(line) => line,
            Err(e) => protocol::err_response(&StreamError::InvalidRequest(e.0)),
        }
    }

    /// Probe every backend whose probe is due and refresh the gauges.
    /// Blocking exchanges on the probe thread, riding the same outbound
    /// reactor as routed traffic (one socket story, one timeout story).
    fn probe_once(&self) {
        let topo = self.topology();
        let now = Instant::now();
        for shard in &topo.shards {
            if !shard.health.probe_due(now) {
                continue;
            }
            match self.pool.exchange(&shard.addr, None, r#"{"op":"health"}"#) {
                Ok(reply) => {
                    let ok = serde_json::parse_value(&reply)
                        .ok()
                        .and_then(|v| v.get("ok").and_then(Value::as_bool));
                    if ok == Some(true) {
                        shard.health.mark_success(self.options.probe_interval);
                    } else {
                        shard.health.mark_failure(
                            "health probe got a not-ok reply",
                            self.options.probe_interval,
                        );
                    }
                }
                Err((_, e)) => shard
                    .health
                    .mark_failure(&e.to_string(), self.options.probe_interval),
            }
        }
        // Recovered backends drain their write-repair backlog here: the
        // probe that found them healthy doubles as the replay trigger.
        for shard in &topo.shards {
            if shard.health.is_healthy() && !shard.repair.lock().is_empty() {
                self.drain_repairs(shard);
            }
        }
        self.update_gauges();
    }
}

/// How often the probe thread wakes to check which probes are due.
const PROBE_TICK: Duration = Duration::from_millis(50);

/// Handle to the background probe thread; stops and joins on drop.
pub struct Prober {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Prober {
    /// Stop and join the probe thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Prober {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Spawn the background probe loop for `router`.
pub fn spawn_prober(router: Arc<Router>) -> Prober {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let handle = thread::spawn(move || {
        while !flag.load(std::sync::atomic::Ordering::Relaxed) {
            router.probe_once();
            thread::sleep(PROBE_TICK);
        }
    });
    Prober {
        stop,
        handle: Some(handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect()
    }

    #[test]
    fn rejects_empty_and_duplicate_backends() {
        assert!(Router::new(Vec::new(), RouterOptions::default()).is_err());
        let dup = vec!["a:1".to_string(), "a:1".to_string()];
        assert!(Router::new(dup, RouterOptions::default()).is_err());
    }

    #[test]
    fn owner_is_stable_and_reported() {
        let router = Router::new(addrs(3), RouterOptions::default()).unwrap();
        let (idx, addr) = router.owner("cohen");
        assert!(idx < 3);
        assert_eq!(addr, addrs(3)[idx]);
        assert_eq!(router.owner("cohen").0, idx);
    }

    #[test]
    fn malformed_lines_and_unknown_ops_are_answered_locally() {
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        let out = router.process_line("not json");
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("parse"));
        let out = router.process_line(r#"{"op":"frobnicate"}"#);
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid-request"));
        let out = router.process_line(r#"{"op":"ingest","text":"no name"}"#);
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid-request"));
    }

    #[test]
    fn health_answers_without_backends() {
        // Nothing listens on these ports; health must still answer.
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        let out = router.process_line(r#"{"op":"health"}"#);
        assert!(!out.shutdown);
        let v = serde_json::parse_value(&out.response).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("backends").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("shards").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn topology_op_validates_its_payload() {
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        for bad in [
            r#"{"op":"topology"}"#,
            r#"{"op":"topology","backends":[]}"#,
            r#"{"op":"topology","backends":[7]}"#,
            r#"{"op":"topology","backends":["a:1","a:1"]}"#,
        ] {
            let v = serde_json::parse_value(&router.process_line(bad).response).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{bad}");
            assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid-request"));
        }
    }

    #[test]
    fn deferred_lines_answer_local_ops_before_returning() {
        let router = Router::new(addrs(2), RouterOptions::default()).unwrap();
        let (tx, rx) = mpsc::channel();
        router.process_line_deferred(
            r#"{"op":"health"}"#,
            Box::new(move |outcome| {
                let _ = tx.send(outcome);
            }),
        );
        // Local ops complete synchronously inside the call.
        let outcome = rx.try_recv().expect("health answers inline");
        let v = serde_json::parse_value(&outcome.response).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn deferred_per_name_ops_complete_without_blocking_the_caller() {
        // Dead backends + retries:0 → the unreachable reply arrives from
        // the outbound reactor, not from the submitting thread.
        let options = RouterOptions {
            retries: 0,
            connect_timeout: Duration::from_millis(300),
            ..RouterOptions::default()
        };
        let router = Router::new(addrs(2), options).unwrap();
        let (tx, rx) = mpsc::channel();
        router.process_line_deferred(
            r#"{"op":"resolve","name":"cohen","text":"x"}"#,
            Box::new(move |outcome| {
                let _ = tx.send(outcome);
            }),
        );
        let outcome = rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let v = serde_json::parse_value(&outcome.response).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("unreachable"));
    }
}
