#![warn(missing_docs)]

//! # weber-shard
//!
//! A sharded routing tier over many `weber serve` backends.
//!
//! One streaming daemon holds every name's block index, trained model and
//! live partition in a single process; the first scaling lever is to
//! split the *names* across processes. All of `weber-stream`'s state is
//! keyed by the ambiguous name, so routing is exact — a consistent-hash
//! ring ([`ring`]) maps each name to the backends that hold it (one, or
//! `R` under `--replication R`), and the router speaks the same NDJSON
//! protocol as a single daemon:
//!
//! - **per-name writes** (`seed`, `ingest`) are forwarded to every
//!   backend in the name's replica set over the asynchronous outbound
//!   connection pool ([`pool`]) — one epoll reactor multiplexing every
//!   pooled backend socket, so no thread ever parks on a backend round
//!   trip — with bounded retries (idempotent ops retry any transport
//!   failure; `ingest` only retries failures that provably sent nothing)
//!   and the answering shard's index appended to the reply; a replica
//!   that misses a write gets the line buffered and replayed when it
//!   recovers (write repair);
//! - the **per-name read** (`resolve`) fails over across the replica set
//!   in ring order — healthy members first — so fewer than R dead
//!   backends never make a name unreadable;
//! - **fan-out ops** (`snapshot`, `metrics`, `persist`, `restore`,
//!   `flush`, `shutdown`) are broadcast to every backend concurrently and
//!   merged into one well-formed reply ([`merge`]) — unreachable backends
//!   degrade the answer (`"degraded":true` plus the unreachable shard
//!   list) instead of failing it, and the snapshot merge collapses
//!   replicated names to their preferred copy;
//! - **`health`** answers from the router's own records ([`health`]) —
//!   probes with exponential backoff plus passive marks from routed
//!   traffic — without contacting any backend;
//! - **`topology`** swaps the backend set at runtime: the old ring
//!   persists its names to the shared state directory first, then the new
//!   replica sets restore them lazily on their next touch.
//!
//! The front end ([`front`]) serves stdin/stdout or TCP with the same
//! concurrency and shutdown model as `weber serve`. Everything is
//! instrumented through `weber-obs`; the `metrics` op merges every
//! backend's snapshot (namespaced `shard<i>.`) with the router's own
//! counters, gauges and latency histograms.

pub mod front;
pub mod health;
pub mod merge;
pub mod pool;
pub mod ring;
pub mod router;

pub use front::{
    route_listener, route_listener_with, route_stdio, route_tcp, route_tcp_with, FrontOptions,
};
pub use health::HealthState;
pub use merge::{snapshot_from_wire, ShardOutcome};
pub use pool::{ExchangeCallback, ExchangeResult, OutboundPool, Phase, PoolOptions};
pub use ring::{fnv1a, HashRing};
pub use router::{spawn_prober, LineOutcome, Prober, Router, RouterError, RouterOptions};
pub use weber_net::IoMode;
