//! Pooled persistent connections to one backend.
//!
//! The router keeps a small stack of idle NDJSON connections per backend
//! so routed requests don't pay a TCP handshake each. A connection is
//! checked out for exactly one request/response exchange and returned
//! afterwards; failed connections are dropped, never pooled.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use parking_lot::Mutex;

/// Where a failed exchange got to — retry policy depends on it. A failure
/// during [`Phase::Connect`] provably sent nothing, so even non-idempotent
/// ops may retry; a failure during [`Phase::Exchange`] may have been
/// applied by the backend before the transport died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The TCP connect itself failed: the backend saw nothing.
    Connect,
    /// The write or the read of the reply failed: the backend may have
    /// processed the request.
    Exchange,
}

/// One persistent NDJSON connection.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connect with a bounded handshake and per-exchange I/O timeouts.
    pub fn open(addr: &str, connect_timeout: Duration, io_timeout: Duration) -> io::Result<Self> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request line, read one response line. An EOF before the
    /// reply is an error: NDJSON replies are 1:1 with requests.
    pub fn exchange(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "backend closed the connection before replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

/// A bounded stack of idle connections to one backend.
pub struct ConnectionPool {
    addr: String,
    idle: Mutex<Vec<Connection>>,
    max_idle: usize,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl ConnectionPool {
    /// A pool for `addr`, keeping at most `max_idle` warm connections.
    pub fn new(
        addr: impl Into<String>,
        max_idle: usize,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Self {
        ConnectionPool {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
            connect_timeout,
            io_timeout,
        }
    }

    /// The backend address this pool serves.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Idle connections currently pooled.
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }

    /// Take a pooled connection, if any.
    fn checkout(&self) -> Option<Connection> {
        self.idle.lock().pop()
    }

    /// Return a healthy connection for reuse; dropped if the pool is full.
    fn checkin(&self, conn: Connection) {
        let mut idle = self.idle.lock();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// Drop every pooled connection (after a backend restart the warm
    /// sockets are all stale).
    pub fn drain(&self) {
        self.idle.lock().clear();
    }

    /// One exchange over a pooled or fresh connection. On success the
    /// connection goes back to the pool; on failure it is dropped and the
    /// error reports which [`Phase`] failed. A pooled connection never
    /// fails at `Connect` — going through the pool means the bytes may
    /// have reached the backend, which is exactly what `Exchange` means.
    pub fn exchange(&self, line: &str) -> Result<String, (Phase, io::Error)> {
        let mut conn = match self.checkout() {
            Some(c) => c,
            None => Connection::open(&self.addr, self.connect_timeout, self.io_timeout)
                .map_err(|e| (Phase::Connect, e))?,
        };
        match conn.exchange(line) {
            Ok(reply) => {
                self.checkin(conn);
                Ok(reply)
            }
            Err(e) => Err((Phase::Exchange, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    const FAST: Duration = Duration::from_millis(500);

    /// An echo backend replying `{"ok":true}` to every line.
    fn echo_backend(replies_per_conn: usize) -> (String, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || {
            for stream in listener.incoming().take(4) {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                for _ in 0..replies_per_conn {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    writer.write_all(b"{\"ok\":true}\n").unwrap();
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn exchanges_reuse_the_pooled_connection() {
        let (addr, _handle) = echo_backend(16);
        let pool = ConnectionPool::new(&addr, 2, FAST, FAST);
        assert_eq!(pool.exchange("{\"op\":\"x\"}").unwrap(), "{\"ok\":true}");
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.exchange("{\"op\":\"x\"}").unwrap(), "{\"ok\":true}");
        assert_eq!(pool.idle(), 1, "the same connection is reused");
    }

    #[test]
    fn connect_failure_reports_the_connect_phase() {
        // A bound-then-dropped listener gives a port nobody listens on.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let pool = ConnectionPool::new(format!("127.0.0.1:{port}"), 2, FAST, FAST);
        let (phase, _err) = pool.exchange("{\"op\":\"x\"}").unwrap_err();
        assert_eq!(phase, Phase::Connect);
    }

    #[test]
    fn backend_hangup_reports_the_exchange_phase_and_drops_the_conn() {
        let (addr, _handle) = echo_backend(1); // one reply, then the conn closes
        let pool = ConnectionPool::new(&addr, 2, FAST, FAST);
        assert!(pool.exchange("{\"op\":\"x\"}").is_ok());
        // The pooled connection is now half-dead: the backend stopped
        // reading after one line.
        let (phase, _err) = pool.exchange("{\"op\":\"x\"}").unwrap_err();
        assert_eq!(phase, Phase::Exchange);
        assert_eq!(pool.idle(), 0, "failed connections are not pooled");
    }
}
