//! The asynchronous outbound backend pool: every router→backend
//! connection multiplexed on one epoll reactor.
//!
//! The old pool parked the calling thread for the whole round trip
//! (blocking connect, blocking write, blocking read), so each in-flight
//! backend exchange cost one OS thread and a slow replica serialized
//! unrelated requests behind the front end's worker count. This reactor
//! inverts that: callers *submit* an exchange with a completion callback
//! and return immediately; pooled sockets are non-blocking, registered
//! with a [`weber_net::Poller`], written through [`WriteBuffer`] and
//! framed with [`LineFramer`], and a pending-exchange table per
//! connection matches each NDJSON reply line to the oldest unanswered
//! request (the protocol is strictly 1:1 and in order per connection).
//!
//! Each backend gets `slots_per_backend` connection slots. A submission
//! carrying a key (the hash of the entity name) sticks to
//! `key % slots`, so same-name writes travel one TCP connection in
//! admission order end to end; key-less submissions (probes, fan-out
//! ops) round-robin across slots. A slot pipelines up to
//! `max_in_flight` exchanges on its connection and queues the rest;
//! timeouts are enforced by a periodic sweep on the reactor (queued too
//! long → [`Phase::Connect`] failure, unanswered too long → the
//! connection is poisoned and every exchange riding it fails at
//! [`Phase::Exchange`]).
//!
//! Blocking callers (the stdio front end, probes, tests) use
//! [`OutboundPool::exchange`], a thin submit-and-wait wrapper — from any
//! thread except the reactor's own, where waiting would deadlock (the
//! call panics instead).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use weber_net::{
    connect_nonblocking, connect_outcome, ConnectProgress, Event, Interest, LineFramer, Poller,
    Waker, WriteBuffer,
};

/// Where a failed exchange got to — retry policy depends on it. A failure
/// during [`Phase::Connect`] provably sent nothing, so even non-idempotent
/// ops may retry; a failure during [`Phase::Exchange`] may have been
/// applied by the backend before the transport died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Nothing reached the backend: the dial failed, or the exchange
    /// expired while still queued behind the slot's connection.
    Connect,
    /// The request was written (or may have been): the backend may have
    /// processed it even though the reply never arrived.
    Exchange,
}

/// What one exchange resolved to.
pub type ExchangeResult = Result<String, (Phase, io::Error)>;

/// The completion a submitter hands to [`OutboundPool::submit`]. Runs on
/// the reactor thread, so it must not block — post to a channel, resubmit
/// asynchronously, or finish a [`weber_net::Responder`].
pub type ExchangeCallback = Box<dyn FnOnce(ExchangeResult) + Send>;

/// Tuning for the outbound reactor.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Connection slots per backend (the old pool's `pool_capacity`).
    pub slots_per_backend: usize,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-exchange deadline once the request has been written.
    pub io_timeout: Duration,
    /// Exchanges pipelined on one connection before the rest queue.
    pub max_in_flight: usize,
    /// Longest accepted backend reply line.
    pub max_reply_bytes: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            slots_per_backend: 2,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(30),
            max_in_flight: 32,
            max_reply_bytes: 64 * 1024 * 1024,
        }
    }
}

/// How often the reactor sweeps for expired connects and exchanges.
const SWEEP_TICK: Duration = Duration::from_millis(25);
const TOKEN_WAKER: u64 = 0;
const FIRST_CONN_TOKEN: u64 = 1;
const READ_CHUNK: usize = 16 * 1024;

/// One submitted exchange, from queue to pending table to callback.
struct Exchange {
    line: String,
    deadline: Instant,
    callback: ExchangeCallback,
}

impl Exchange {
    fn fail(self, phase: Phase, kind: io::ErrorKind, detail: &str) {
        let cb = self.callback;
        invoke(cb, Err((phase, io::Error::new(kind, detail.to_string()))));
    }
}

/// Run a completion callback without letting a panic inside it take the
/// reactor (and every other in-flight exchange) down with it.
fn invoke(callback: ExchangeCallback, result: ExchangeResult) {
    let _ = catch_unwind(AssertUnwindSafe(move || callback(result)));
}

enum ConnState {
    /// Dial in flight; `EPOLLOUT` resolves it by `deadline`.
    Connecting {
        deadline: Instant,
    },
    Ready,
}

/// One live outbound connection: its socket, reply framer, write buffer,
/// and the FIFO of exchanges written but not yet answered (the
/// pending-exchange table — NDJSON replies are 1:1 and ordered, so the
/// front of this queue owns the next reply line).
struct Conn {
    stream: TcpStream,
    token: u64,
    state: ConnState,
    framer: LineFramer,
    out: WriteBuffer,
    in_flight: VecDeque<Exchange>,
    interest: Interest,
}

/// One connection slot of a backend: at most one connection, plus the
/// exchanges waiting for room on it.
#[derive(Default)]
struct Slot {
    conn: Option<Conn>,
    queue: VecDeque<Exchange>,
}

/// All per-backend state, keyed in the reactor by backend address.
struct Backend {
    slots: Vec<Slot>,
    /// Round-robin cursor for key-less submissions.
    rr: usize,
}

enum Command {
    Submit {
        addr: String,
        key: Option<u64>,
        exchange: Exchange,
    },
    /// Close the idle connections of one backend (stale after a backend
    /// restart; the next submission dials fresh).
    Invalidate {
        addr: String,
    },
    /// Drop state for backends no longer in the topology, failing
    /// whatever was still queued or in flight towards them.
    Retain {
        addrs: Vec<String>,
    },
    Stop,
}

struct CommandQueue {
    commands: VecDeque<Command>,
    stopped: bool,
}

struct Shared {
    queue: Mutex<CommandQueue>,
    waker: Waker,
    reactor_thread: OnceLock<ThreadId>,
}

/// Handle to the outbound reactor. Cloneable via `Arc`; dropping the
/// last handle stops the reactor and fails whatever was still pending.
pub struct OutboundPool {
    shared: Arc<Shared>,
    options: PoolOptions,
    reactor: Mutex<Option<JoinHandle<()>>>,
}

impl OutboundPool {
    /// Start the reactor thread.
    pub fn new(options: PoolOptions) -> io::Result<Self> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(CommandQueue {
                commands: VecDeque::new(),
                stopped: false,
            }),
            waker: Waker::new()?,
            reactor_thread: OnceLock::new(),
        });
        let mut reactor = Reactor::new(Arc::clone(&shared), options.clone())?;
        let handle = thread::Builder::new()
            .name("weber-outbound".into())
            .spawn(move || reactor.run())?;
        Ok(OutboundPool {
            shared,
            options,
            reactor: Mutex::new(Some(handle)),
        })
    }

    /// True on the reactor's own thread — where completion callbacks run
    /// and where blocking on the pool would deadlock.
    pub fn on_reactor_thread(&self) -> bool {
        self.shared.reactor_thread.get().copied() == Some(thread::current().id())
    }

    /// Submit one exchange towards `addr`. `key` pins it to
    /// `key % slots` for per-key FIFO ordering; `None` round-robins.
    /// The callback fires exactly once, on the reactor thread.
    pub fn submit(&self, addr: &str, key: Option<u64>, line: String, callback: ExchangeCallback) {
        let deadline = Instant::now() + self.options.connect_timeout + self.options.io_timeout;
        let exchange = Exchange {
            line,
            deadline,
            callback,
        };
        let rejected = {
            let mut q = self.shared.queue.lock();
            if q.stopped {
                Some(exchange)
            } else {
                q.commands.push_back(Command::Submit {
                    addr: addr.to_string(),
                    key,
                    exchange,
                });
                None
            }
        };
        match rejected {
            Some(exchange) => exchange.fail(
                Phase::Connect,
                io::ErrorKind::NotConnected,
                "outbound pool is stopped",
            ),
            None => self.shared.waker.wake(),
        }
    }

    /// Submit-and-wait: one exchange from a thread that can afford to
    /// block (stdio front end, probes, tests). Panics if called on the
    /// reactor thread, where waiting would deadlock the whole pool.
    pub fn exchange(&self, addr: &str, key: Option<u64>, line: &str) -> ExchangeResult {
        assert!(
            !self.on_reactor_thread(),
            "OutboundPool::exchange would deadlock on the reactor thread; use submit"
        );
        let (tx, rx) = mpsc::channel();
        self.submit(
            addr,
            key,
            line.to_string(),
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        rx.recv().unwrap_or_else(|_| {
            Err((
                Phase::Connect,
                io::Error::new(io::ErrorKind::NotConnected, "outbound pool is stopped"),
            ))
        })
    }

    /// Close `addr`'s idle connections. After an exchange-phase failure
    /// the surviving warm sockets usually predate the backend restart
    /// that killed the first one; dropping them makes retries dial fresh.
    pub fn invalidate(&self, addr: &str) {
        self.command(Command::Invalidate {
            addr: addr.to_string(),
        });
    }

    /// Drop state for every backend not in `addrs` (topology changes).
    /// Exchanges still pending towards a dropped backend fail.
    pub fn retain(&self, addrs: &[String]) {
        self.command(Command::Retain {
            addrs: addrs.to_vec(),
        });
    }

    fn command(&self, command: Command) {
        let mut q = self.shared.queue.lock();
        if !q.stopped {
            q.commands.push_back(command);
            drop(q);
            self.shared.waker.wake();
        }
    }
}

impl Drop for OutboundPool {
    fn drop(&mut self) {
        self.command(Command::Stop);
        if let Some(handle) = self.reactor.lock().take() {
            let _ = handle.join();
        }
    }
}

/// The reactor: owns every outbound socket and runs the state machine.
struct Reactor {
    poller: Poller,
    shared: Arc<Shared>,
    options: PoolOptions,
    backends: HashMap<String, Backend>,
    /// token → (backend addr, slot index) for event dispatch.
    tokens: HashMap<u64, (String, usize)>,
    next_token: u64,
    events: Vec<Event>,
    last_sweep: Instant,
}

impl Reactor {
    fn new(shared: Arc<Shared>, options: PoolOptions) -> io::Result<Self> {
        let poller = Poller::new(256)?;
        poller.add(shared.waker.raw_fd(), TOKEN_WAKER, Interest::READ)?;
        Ok(Reactor {
            poller,
            shared,
            options,
            backends: HashMap::new(),
            tokens: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            events: Vec::with_capacity(256),
            last_sweep: Instant::now(),
        })
    }

    fn run(&mut self) {
        let _ = self.shared.reactor_thread.set(thread::current().id());
        loop {
            self.events.clear();
            if self
                .poller
                .wait(&mut self.events, Some(SWEEP_TICK))
                .is_err()
            {
                // An epoll_wait failure is unrecoverable; stop and fail
                // everything rather than spin.
                break;
            }
            for i in 0..self.events.len() {
                let event = self.events[i];
                if event.token == TOKEN_WAKER {
                    self.shared.waker.drain();
                } else {
                    self.handle_conn_event(event);
                }
            }
            if !self.drain_commands() {
                break;
            }
            let now = Instant::now();
            if now.duration_since(self.last_sweep) >= SWEEP_TICK {
                self.last_sweep = now;
                self.sweep(now);
            }
            self.pump_all();
        }
        self.shutdown();
    }

    /// Process queued commands; false means Stop arrived.
    fn drain_commands(&mut self) -> bool {
        loop {
            let command = {
                let mut q = self.shared.queue.lock();
                q.commands.pop_front()
            };
            let Some(command) = command else {
                return true;
            };
            match command {
                Command::Submit {
                    addr,
                    key,
                    exchange,
                } => self.accept_submit(addr, key, exchange),
                Command::Invalidate { addr } => {
                    if let Some(backend) = self.backends.get_mut(&addr) {
                        for slot in &mut backend.slots {
                            let idle = slot
                                .conn
                                .as_ref()
                                .is_some_and(|c| c.in_flight.is_empty() && c.out.is_empty());
                            if idle {
                                if let Some(conn) = slot.conn.take() {
                                    self.tokens.remove(&conn.token);
                                }
                            }
                        }
                    }
                }
                Command::Retain { addrs } => {
                    let doomed: Vec<String> = self
                        .backends
                        .keys()
                        .filter(|a| !addrs.contains(a))
                        .cloned()
                        .collect();
                    for addr in doomed {
                        if let Some(backend) = self.backends.remove(&addr) {
                            for slot in backend.slots {
                                self.fail_slot(
                                    slot,
                                    io::ErrorKind::NotConnected,
                                    "backend removed from the topology",
                                );
                            }
                        }
                    }
                }
                Command::Stop => return false,
            }
        }
    }

    fn accept_submit(&mut self, addr: String, key: Option<u64>, exchange: Exchange) {
        let slots = self.options.slots_per_backend.max(1);
        let backend = self.backends.entry(addr).or_insert_with(|| Backend {
            slots: (0..slots).map(|_| Slot::default()).collect(),
            rr: 0,
        });
        let idx = match key {
            Some(key) => (key % slots as u64) as usize,
            None => {
                backend.rr = (backend.rr + 1) % slots;
                backend.rr
            }
        };
        backend.slots[idx].queue.push_back(exchange);
    }

    /// Fail a whole slot: queued exchanges at `Connect` (nothing was
    /// sent), in-flight ones at `Exchange` (the request was written).
    fn fail_slot(&mut self, mut slot: Slot, kind: io::ErrorKind, detail: &str) {
        if let Some(conn) = slot.conn.take() {
            self.tokens.remove(&conn.token);
            for ex in conn.in_flight {
                ex.fail(Phase::Exchange, kind, detail);
            }
        }
        for ex in slot.queue.drain(..) {
            ex.fail(Phase::Connect, kind, detail);
        }
    }

    fn handle_conn_event(&mut self, event: Event) {
        let Some((addr, slot_idx)) = self.tokens.get(&event.token).cloned() else {
            return; // connection already closed this iteration
        };
        let Some(backend) = self.backends.get_mut(&addr) else {
            return;
        };
        let slot = &mut backend.slots[slot_idx];
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        match conn.state {
            ConnState::Connecting { .. } => {
                if !(event.writable || event.hangup) {
                    return;
                }
                match connect_outcome(&conn.stream) {
                    Ok(()) => {
                        let _ = conn.stream.set_nodelay(true);
                        conn.state = ConnState::Ready;
                    }
                    Err(e) => {
                        let detail = format!("connect to {addr} failed: {e}");
                        let slot = std::mem::take(slot);
                        self.fail_slot(slot, e.kind(), &detail);
                    }
                }
            }
            ConnState::Ready => {
                let mut dead: Option<(io::ErrorKind, String)> = None;
                if event.writable && !conn.out.is_empty() {
                    if let Err(e) = conn.out.try_flush(&mut conn.stream) {
                        dead = Some((e.kind(), format!("write to {addr} failed: {e}")));
                    }
                }
                if dead.is_none() && (event.readable || event.hangup) {
                    dead = Self::read_replies(conn, &addr);
                }
                if let Some((kind, detail)) = dead {
                    if detail.is_empty() {
                        // The backend closed an idle pooled connection;
                        // nothing was lost, so only the socket goes away
                        // (queued work redials on the next pump).
                        if let Some(conn) = slot.conn.take() {
                            self.tokens.remove(&conn.token);
                        }
                    } else {
                        let slot = std::mem::take(slot);
                        self.fail_slot(slot, kind, &detail);
                    }
                }
            }
        }
    }

    /// Drain the socket, matching each framed reply line to the oldest
    /// pending exchange. Returns why the connection must die, if it must.
    fn read_replies(conn: &mut Conn, addr: &str) -> Option<(io::ErrorKind, String)> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    return if conn.in_flight.is_empty() && conn.out.is_empty() {
                        // An idle pooled connection the backend chose to
                        // close: nothing was lost.
                        Some((io::ErrorKind::UnexpectedEof, String::new()))
                    } else {
                        Some((
                            io::ErrorKind::UnexpectedEof,
                            format!("{addr} closed the connection before replying"),
                        ))
                    };
                }
                Ok(n) => {
                    conn.framer.push(&chunk[..n]);
                    while let Some(raw) = conn.framer.next_line() {
                        if conn.framer.overflowed() {
                            return Some((
                                io::ErrorKind::InvalidData,
                                format!("reply line from {addr} exceeds the size cap"),
                            ));
                        }
                        let Ok(reply) = String::from_utf8(raw) else {
                            return Some((
                                io::ErrorKind::InvalidData,
                                format!("reply from {addr} is not valid UTF-8"),
                            ));
                        };
                        let Some(exchange) = conn.in_flight.pop_front() else {
                            return Some((
                                io::ErrorKind::InvalidData,
                                format!("{addr} sent a reply with no request pending"),
                            ));
                        };
                        invoke(exchange.callback, Ok(reply));
                    }
                    if conn.framer.overflowed() {
                        return Some((
                            io::ErrorKind::InvalidData,
                            format!("reply line from {addr} exceeds the size cap"),
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some((e.kind(), format!("read from {addr} failed: {e}"))),
            }
        }
    }

    /// Expire overdue connects, exchanges and queued work.
    fn sweep(&mut self, now: Instant) {
        let addrs: Vec<String> = self.backends.keys().cloned().collect();
        for addr in addrs {
            let slots = self.backends.get(&addr).map(|b| b.slots.len()).unwrap_or(0);
            for idx in 0..slots {
                // A connect past its deadline kills the dial and fails the
                // queue at Connect; an unanswered exchange past its
                // deadline poisons the connection (the reply stream can no
                // longer be aligned) and fails everything riding it.
                let (connect_expired, exchange_expired) = {
                    let slot = &self.backends.get(&addr).unwrap().slots[idx];
                    match &slot.conn {
                        Some(conn) => match conn.state {
                            ConnState::Connecting { deadline } => (deadline <= now, false),
                            ConnState::Ready => (
                                false,
                                conn.in_flight.front().is_some_and(|ex| ex.deadline <= now),
                            ),
                        },
                        None => (false, false),
                    }
                };
                if connect_expired {
                    let slot =
                        std::mem::take(&mut self.backends.get_mut(&addr).unwrap().slots[idx]);
                    self.fail_slot(
                        slot,
                        io::ErrorKind::TimedOut,
                        &format!("connect to {addr} timed out"),
                    );
                    continue;
                }
                if exchange_expired {
                    let slot =
                        std::mem::take(&mut self.backends.get_mut(&addr).unwrap().slots[idx]);
                    self.fail_slot(
                        slot,
                        io::ErrorKind::TimedOut,
                        &format!("exchange with {addr} timed out"),
                    );
                    continue;
                }
                // Queued exchanges expire front-first (FIFO deadlines).
                loop {
                    let expired = {
                        let slot = &mut self.backends.get_mut(&addr).unwrap().slots[idx];
                        if slot.queue.front().is_some_and(|ex| ex.deadline <= now) {
                            slot.queue.pop_front()
                        } else {
                            None
                        }
                    };
                    match expired {
                        Some(ex) => ex.fail(
                            Phase::Connect,
                            io::ErrorKind::TimedOut,
                            &format!("request expired waiting for a connection to {addr}"),
                        ),
                        None => break,
                    }
                }
            }
        }
    }

    /// Dial, write and re-arm every slot that has work.
    fn pump_all(&mut self) {
        let addrs: Vec<String> = self.backends.keys().cloned().collect();
        for addr in addrs {
            let slots = self.backends.get(&addr).map(|b| b.slots.len()).unwrap_or(0);
            for idx in 0..slots {
                self.pump_slot(&addr, idx);
            }
        }
    }

    fn pump_slot(&mut self, addr: &str, idx: usize) {
        // Dial when there is work and no connection.
        let needs_dial = {
            let slot = &self.backends.get(addr).unwrap().slots[idx];
            slot.conn.is_none() && !slot.queue.is_empty()
        };
        if needs_dial {
            if let Err((kind, detail)) = self.start_connect(addr, idx) {
                let slot = std::mem::take(&mut self.backends.get_mut(addr).unwrap().slots[idx]);
                self.fail_slot(slot, kind, &detail);
                return;
            }
        }
        let max_in_flight = self.options.max_in_flight.max(1);
        let io_timeout = self.options.io_timeout;
        let slot = &mut self.backends.get_mut(addr).unwrap().slots[idx];
        let Some(conn) = slot.conn.as_mut() else {
            return;
        };
        let mut flush_failed = false;
        if matches!(conn.state, ConnState::Ready) {
            // Move queued exchanges onto the wire up to the pipeline cap;
            // the exchange clock starts when the request is written.
            while conn.in_flight.len() < max_in_flight {
                let Some(mut exchange) = slot.queue.pop_front() else {
                    break;
                };
                exchange.deadline = Instant::now() + io_timeout;
                conn.out.push_line(&exchange.line);
                conn.in_flight.push_back(exchange);
            }
            if !conn.out.is_empty() && conn.out.try_flush(&mut conn.stream).is_err() {
                flush_failed = true;
            }
        }
        if flush_failed {
            let detail = format!("write to {addr} failed");
            let slot = std::mem::take(slot);
            self.fail_slot(slot, io::ErrorKind::BrokenPipe, &detail);
            return;
        }
        // Recompute epoll interest.
        let want = match conn_interest(slot.conn.as_ref()) {
            Some(want) => want,
            None => return,
        };
        let conn = slot.conn.as_mut().unwrap();
        if want != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, want)
                .is_err()
            {
                let detail = format!("lost epoll registration for {addr}");
                let slot = std::mem::take(slot);
                self.fail_slot(slot, io::ErrorKind::Other, &detail);
            } else {
                let slot = &mut self.backends.get_mut(addr).unwrap().slots[idx];
                if let Some(conn) = slot.conn.as_mut() {
                    conn.interest = want;
                }
            }
        }
    }

    /// Begin a non-blocking dial for one slot.
    fn start_connect(&mut self, addr: &str, idx: usize) -> Result<(), (io::ErrorKind, String)> {
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| (e.kind(), format!("cannot resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| {
                (
                    io::ErrorKind::InvalidInput,
                    format!("{addr} resolves to nothing"),
                )
            })?;
        let progress = connect_nonblocking(&sockaddr)
            .map_err(|e| (e.kind(), format!("connect to {addr} failed: {e}")))?;
        let (stream, state) = match progress {
            ConnectProgress::Ready(stream) => {
                let _ = stream.set_nodelay(true);
                (stream, ConnState::Ready)
            }
            ConnectProgress::Pending(stream) => (
                stream,
                ConnState::Connecting {
                    deadline: Instant::now() + self.options.connect_timeout,
                },
            ),
        };
        let token = self.next_token;
        self.next_token += 1;
        let interest = match state {
            // A pending dial resolves via EPOLLOUT; a ready connection
            // watches for replies (and EOF).
            ConnState::Connecting { .. } => Interest {
                readable: false,
                writable: true,
            },
            ConnState::Ready => Interest::READ,
        };
        self.poller
            .add(stream.as_raw_fd(), token, interest)
            .map_err(|e| (e.kind(), format!("cannot register {addr} socket: {e}")))?;
        self.tokens.insert(token, (addr.to_string(), idx));
        let slot = &mut self.backends.get_mut(addr).unwrap().slots[idx];
        slot.conn = Some(Conn {
            stream,
            token,
            state,
            framer: LineFramer::new(self.options.max_reply_bytes),
            out: WriteBuffer::new(),
            in_flight: VecDeque::new(),
            interest,
        });
        Ok(())
    }

    /// Stop: mark the queue closed, fail everything still pending.
    fn shutdown(&mut self) {
        let leftovers: Vec<Command> = {
            let mut q = self.shared.queue.lock();
            q.stopped = true;
            q.commands.drain(..).collect()
        };
        for command in leftovers {
            if let Command::Submit { exchange, .. } = command {
                exchange.fail(
                    Phase::Connect,
                    io::ErrorKind::NotConnected,
                    "outbound pool is stopped",
                );
            }
        }
        for (_, backend) in self.backends.drain() {
            for slot in backend.slots {
                if let Some(conn) = slot.conn {
                    for ex in conn.in_flight {
                        ex.fail(
                            Phase::Exchange,
                            io::ErrorKind::NotConnected,
                            "outbound pool is stopped",
                        );
                    }
                }
                for ex in slot.queue {
                    ex.fail(
                        Phase::Connect,
                        io::ErrorKind::NotConnected,
                        "outbound pool is stopped",
                    );
                }
            }
        }
        self.tokens.clear();
    }
}

/// Interest a slot's connection should be armed with.
fn conn_interest(conn: Option<&Conn>) -> Option<Interest> {
    let conn = conn?;
    Some(match conn.state {
        ConnState::Connecting { .. } => Interest {
            readable: false,
            writable: true,
        },
        ConnState::Ready => Interest {
            readable: true,
            writable: !conn.out.is_empty(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fast_options() -> PoolOptions {
        PoolOptions {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(1500),
            ..PoolOptions::default()
        }
    }

    /// An echo backend answering every line with itself; counts accepted
    /// connections so tests can assert reuse.
    fn echo_backend() -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepted = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&accepted);
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                count.fetch_add(1, Ordering::SeqCst);
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            break;
                        }
                        if writer.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, accepted)
    }

    #[test]
    fn exchanges_reuse_one_connection_per_slot() {
        let (addr, accepted) = echo_backend();
        let pool = OutboundPool::new(fast_options()).unwrap();
        for i in 0..8 {
            let line = format!("{{\"i\":{i}}}");
            assert_eq!(pool.exchange(&addr, Some(7), &line).unwrap(), line);
        }
        // One sticky key → one slot → one TCP connection for all eight.
        assert_eq!(accepted.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn same_key_submissions_complete_in_order() {
        let (addr, _) = echo_backend();
        let pool = OutboundPool::new(fast_options()).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel();
        for i in 0..32 {
            let seen = Arc::clone(&seen);
            let tx = tx.clone();
            pool.submit(
                &addr,
                Some(3),
                format!("line-{i}"),
                Box::new(move |result| {
                    seen.lock().push(result.unwrap());
                    let _ = tx.send(());
                }),
            );
        }
        for _ in 0..32 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let seen = seen.lock();
        let expected: Vec<String> = (0..32).map(|i| format!("line-{i}")).collect();
        assert_eq!(
            *seen, expected,
            "pipelined same-key exchanges kept FIFO order"
        );
    }

    #[test]
    fn connect_failure_reports_the_connect_phase() {
        // A bound-then-dropped listener gives a port nobody listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let pool = OutboundPool::new(fast_options()).unwrap();
        let (phase, _err) = pool.exchange(&addr, None, "{\"op\":\"x\"}").unwrap_err();
        assert_eq!(phase, Phase::Connect);
    }

    #[test]
    fn hangup_before_the_reply_reports_the_exchange_phase() {
        // A backend that reads the request and closes without answering.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                // Dropping the stream here closes it before any reply.
            }
        });
        let pool = OutboundPool::new(fast_options()).unwrap();
        let (phase, err) = pool.exchange(&addr, None, "{\"op\":\"x\"}").unwrap_err();
        assert_eq!(phase, Phase::Exchange, "{err}");
    }

    #[test]
    fn a_stalled_backend_times_out_at_the_exchange_phase() {
        // Accepts and reads but never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                held.push(stream);
            }
        });
        let options = PoolOptions {
            io_timeout: Duration::from_millis(300),
            ..fast_options()
        };
        let pool = OutboundPool::new(options).unwrap();
        let start = Instant::now();
        let (phase, err) = pool.exchange(&addr, None, "{\"op\":\"x\"}").unwrap_err();
        assert_eq!(phase, Phase::Exchange);
        assert_eq!(err.kind(), io::ErrorKind::TimedOut, "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "timeout should fire from the sweep, not hang"
        );
    }

    #[test]
    fn a_stalled_backend_does_not_block_exchanges_to_a_healthy_one() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stalled = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                held.push(stream);
            }
        });
        let (healthy, _) = echo_backend();
        let pool = Arc::new(OutboundPool::new(fast_options()).unwrap());
        // Occupy the stalled backend...
        let (stall_tx, stall_rx) = mpsc::channel();
        pool.submit(
            &stalled,
            Some(0),
            "stall".into(),
            Box::new(move |result| {
                let _ = stall_tx.send(result);
            }),
        );
        // ...and the healthy one still answers promptly.
        let start = Instant::now();
        let reply = pool.exchange(&healthy, Some(0), "ping").unwrap();
        assert_eq!(reply, "ping");
        assert!(
            start.elapsed() < Duration::from_millis(900),
            "healthy exchange waited {:?} behind a stalled backend",
            start.elapsed()
        );
        // The stalled exchange eventually fails instead of leaking.
        let result = stall_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(result.is_err());
    }

    #[test]
    fn retain_fails_pending_work_towards_dropped_backends() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stalled = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                held.push(stream);
            }
        });
        let pool = OutboundPool::new(PoolOptions {
            io_timeout: Duration::from_secs(30),
            ..fast_options()
        })
        .unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(
            &stalled,
            None,
            "x".into(),
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        thread::sleep(Duration::from_millis(100));
        pool.retain(&[]);
        let result = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let (_phase, err) = result.unwrap_err();
        assert!(
            err.to_string().contains("topology"),
            "expected a topology-removal failure, got: {err}"
        );
    }

    #[test]
    fn dropping_the_pool_fails_whatever_is_pending() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stalled = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                held.push(stream);
            }
        });
        let pool = OutboundPool::new(PoolOptions {
            io_timeout: Duration::from_secs(30),
            ..fast_options()
        })
        .unwrap();
        let (tx, rx) = mpsc::channel();
        pool.submit(
            &stalled,
            None,
            "x".into(),
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        );
        thread::sleep(Duration::from_millis(100));
        drop(pool);
        let result = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(result.is_err());
    }
}
