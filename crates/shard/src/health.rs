//! Per-backend health tracking with exponential probe backoff.
//!
//! Health is observational, not gating: names are placed by the ring, and
//! a request for a name whose backend is marked unhealthy is still
//! attempted (marks can be stale). What health buys is cheap reporting
//! (`health` on the router answers without touching any backend), the
//! `route.healthy_backends` gauge, read-failover *ordering* (replicas
//! believed healthy are tried first), probe scheduling that backs off
//! exponentially instead of hammering a dead host once a second forever,
//! and the recovery signal that triggers write-repair replay.
//!
//! Both paths feed it: the active prober sends `{"op":"health"}` on a
//! schedule, and the forwarder marks success/failure passively on every
//! routed exchange — a backend that comes back is observed as healthy by
//! the first request that reaches it, not only by the next probe.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Consecutive failures after which backoff stops growing (2^6 = 64x the
/// base interval).
const MAX_BACKOFF_EXP: u32 = 6;

/// One backend's health record.
pub struct HealthState {
    healthy: AtomicBool,
    /// Consecutive failures (probe or routed) since the last success.
    failures: AtomicU32,
    last_error: Mutex<Option<String>>,
    next_probe_at: Mutex<Instant>,
}

impl HealthState {
    /// A new backend starts healthy (it is probed immediately; starting
    /// pessimistic would mark a perfectly good tier degraded at boot).
    pub fn new() -> Self {
        HealthState {
            healthy: AtomicBool::new(true),
            failures: AtomicU32::new(0),
            last_error: Mutex::new(None),
            next_probe_at: Mutex::new(Instant::now()),
        }
    }

    /// Is the backend believed reachable?
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Consecutive failures since the last success.
    pub fn failures(&self) -> u32 {
        self.failures.load(Ordering::SeqCst)
    }

    /// The most recent failure's message, if currently unhealthy.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Record a successful exchange (probe or routed request).
    pub fn mark_success(&self, probe_interval: Duration) {
        self.healthy.store(true, Ordering::SeqCst);
        self.failures.store(0, Ordering::SeqCst);
        *self.last_error.lock() = None;
        *self.next_probe_at.lock() = Instant::now() + probe_interval;
    }

    /// Record a failed exchange; the next probe is pushed out by
    /// `probe_interval * 2^min(failures-1, 6)`. The failure counter
    /// saturates at `u32::MAX` — a backend that stays dead for a very
    /// long streak must not wrap back to zero (which would both misreport
    /// and restart the backoff ramp).
    pub fn mark_failure(&self, error: &str, probe_interval: Duration) {
        self.healthy.store(false, Ordering::SeqCst);
        let previous = self
            .failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| {
                Some(f.saturating_add(1))
            })
            .expect("the update closure never rejects");
        let failures = previous.saturating_add(1);
        *self.last_error.lock() = Some(error.to_string());
        let delay = Self::backoff_for(failures, probe_interval);
        let now = Instant::now();
        // `Instant + Duration` panics on overflow; an absurd configured
        // interval degrades to "retry in ~a day" instead.
        *self.next_probe_at.lock() = now
            .checked_add(delay)
            .unwrap_or_else(|| now + Duration::from_secs(86_400));
    }

    /// The clamped backoff delay after `failures` consecutive failures.
    /// Saturating: neither the shift nor the multiplication can overflow,
    /// however long the failure streak or large the configured interval.
    fn backoff_for(failures: u32, probe_interval: Duration) -> Duration {
        if failures == 0 {
            return probe_interval;
        }
        let exp = (failures - 1).min(MAX_BACKOFF_EXP);
        probe_interval.saturating_mul(1u32 << exp)
    }

    /// Should the prober contact this backend now? Healthy backends are
    /// probed every interval; unhealthy ones on the backoff schedule.
    pub fn probe_due(&self, now: Instant) -> bool {
        now >= *self.next_probe_at.lock()
    }

    /// Current backoff delay, for reporting.
    pub fn backoff(&self, probe_interval: Duration) -> Duration {
        Self::backoff_for(self.failures(), probe_interval)
    }
}

impl Default for HealthState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(100);

    #[test]
    fn starts_healthy_and_immediately_probeable() {
        let h = HealthState::new();
        assert!(h.is_healthy());
        assert!(h.probe_due(Instant::now()));
        assert_eq!(h.last_error(), None);
    }

    #[test]
    fn failures_back_off_exponentially_and_cap() {
        let h = HealthState::new();
        h.mark_failure("refused", TICK);
        assert!(!h.is_healthy());
        assert_eq!(h.backoff(TICK), TICK);
        h.mark_failure("refused", TICK);
        assert_eq!(h.backoff(TICK), TICK * 2);
        for _ in 0..20 {
            h.mark_failure("refused", TICK);
        }
        assert_eq!(h.backoff(TICK), TICK * 64, "backoff caps at 2^6");
        assert_eq!(h.last_error().as_deref(), Some("refused"));
        // Deep in backoff, the probe is not due right now.
        assert!(!h.probe_due(Instant::now()));
    }

    #[test]
    fn sustained_failure_streaks_saturate_instead_of_overflowing() {
        let h = HealthState::new();
        // Jump to the end of a very long streak: the counter must pin at
        // u32::MAX (not wrap to 0 and restart the backoff ramp) and the
        // backoff math must stay clamped at 2^6.
        h.failures.store(u32::MAX - 1, Ordering::SeqCst);
        h.mark_failure("refused", TICK);
        assert_eq!(h.failures(), u32::MAX);
        h.mark_failure("refused", TICK);
        assert_eq!(h.failures(), u32::MAX, "counter saturates");
        assert_eq!(h.backoff(TICK), TICK * 64, "backoff stays clamped");
        assert!(!h.is_healthy());
    }

    #[test]
    fn huge_probe_intervals_do_not_overflow_the_backoff() {
        let h = HealthState::new();
        for _ in 0..10 {
            // 2^6 × (Duration::MAX / 2) overflows a checked multiply;
            // the saturating path must neither panic nor wrap.
            h.mark_failure("refused", Duration::MAX / 2);
        }
        assert_eq!(h.backoff(Duration::MAX / 2), Duration::MAX);
        assert!(!h.probe_due(Instant::now()));
    }

    #[test]
    fn success_resets_everything() {
        let h = HealthState::new();
        h.mark_failure("refused", TICK);
        h.mark_failure("refused", TICK);
        h.mark_success(TICK);
        assert!(h.is_healthy());
        assert_eq!(h.failures(), 0);
        assert_eq!(h.backoff(TICK), TICK);
        assert_eq!(h.last_error(), None);
    }
}
