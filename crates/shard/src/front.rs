//! The `weber route` front end: NDJSON over stdin/stdout or TCP.
//!
//! The TCP front end defaults to the `weber-net` epoll reactor
//! ([`IoMode::Event`]), and per-name ops (`seed`, `ingest`, `resolve`)
//! take the fully asynchronous path: the reactor classifies them
//! [`RouteClass::Deferred`] and hands each line (with a
//! [`weber_net::Responder`]) to
//! [`Router::process_line_deferred`][crate::Router::process_line_deferred],
//! which submits the backend exchange to the outbound reactor and
//! returns immediately. No thread waits on the backend round trip — a
//! deliberately stalled backend stalls only the requests addressed to
//! it, while requests owned by healthy shards keep flowing, whatever
//! `--workers` is set to. Replies still come back in per-connection
//! admission order (the reactor's reorder buffer holds each one to its
//! line's position), and backpressure comes from the pipelining valve,
//! which stops reading a connection with too many unanswered lines.
//!
//! Fan-out ops (`snapshot`, `metrics`, `persist`, `restore`, `flush`,
//! `shutdown`, `topology`) block for the slowest backend, so they
//! classify [`RouteClass::Control`] and run on a worker thread; `health`
//! and parse errors are answered straight from the reactor
//! ([`RouteClass::Immediate`]) — both are local and cheap.
//!
//! [`IoMode::Threads`] keeps the legacy thread-per-client loop. Both
//! modes share the wire contract: one reply per line in request order,
//! over-cap clients refused with one `overloaded` line, `shutdown`
//! draining the tier (backends included).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use weber_net::{IoMode, RouteClass, ServerOptions};
use weber_stream::protocol;
use weber_stream::StreamError;

use crate::router::Router;

/// How often the acceptor wakes to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Per-connection socket read timeout; bounds how long a shutdown can
/// wait on an idle connection.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// What one connection's loop did.
struct ConnectionOutcome {
    /// Request lines answered on this connection.
    handled: u64,
    /// Whether this connection asked the tier to shut down.
    saw_shutdown: bool,
    /// The connection-level I/O error that ended the loop, if any.
    error: Option<std::io::Error>,
}

/// Tuning knobs of the routing front end.
#[derive(Debug, Clone)]
pub struct FrontOptions {
    /// Worker threads forwarding request lines to backends (event mode;
    /// each holds one connection's lines at a time).
    pub workers: usize,
    /// Bounded queue slots per worker.
    pub queue_capacity: usize,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
    /// Which front-end implementation to run.
    pub io: IoMode,
    /// Evict connections silent for this long (event mode only). `None`
    /// (the default) never evicts — callers keep pooled router
    /// connections idle for long stretches by design.
    pub idle_timeout: Option<Duration>,
    /// Lines admitted but unanswered per connection before its reads
    /// pause (event mode only).
    pub max_pipeline: usize,
}

impl Default for FrontOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            max_connections: 64,
            io: IoMode::Event,
            idle_timeout: None,
            max_pipeline: 256,
        }
    }
}

/// Route NDJSON from stdin to the backends until EOF or `shutdown`.
/// Returns the number of requests handled.
pub fn route_stdio(router: &Router) -> std::io::Result<u64> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let outcome = run_connection(router, stdin.lock(), &mut out, None);
    if let Some(e) = outcome.error {
        return Err(e);
    }
    out.flush()?;
    Ok(outcome.handled)
}

/// Bind `addr` and route clients concurrently. Returns the total number
/// of requests handled across all connections.
pub fn route_tcp(router: Arc<Router>, addr: &str, max_connections: usize) -> std::io::Result<u64> {
    let listener = TcpListener::bind(addr)?;
    route_listener(router, listener, max_connections)
}

/// [`route_tcp`] with full front-end options.
pub fn route_tcp_with(
    router: Arc<Router>,
    addr: &str,
    options: &FrontOptions,
) -> std::io::Result<u64> {
    let listener = TcpListener::bind(addr)?;
    route_listener_with(router, listener, options)
}

/// [`route_tcp`] over an already-bound listener (callers needing an
/// ephemeral port bind `:0` themselves). Runs the default event-loop
/// front end; use [`route_listener_with`] to pick the mode and tune it.
pub fn route_listener(
    router: Arc<Router>,
    listener: TcpListener,
    max_connections: usize,
) -> std::io::Result<u64> {
    route_listener_with(
        router,
        listener,
        &FrontOptions {
            max_connections,
            ..FrontOptions::default()
        },
    )
}

/// [`route_listener`] with full front-end options.
pub fn route_listener_with(
    router: Arc<Router>,
    listener: TcpListener,
    options: &FrontOptions,
) -> std::io::Result<u64> {
    match options.io {
        IoMode::Event => route_listener_event(router, listener, options),
        IoMode::Threads => route_listener_threaded(router, listener, options.max_connections),
    }
}

/// The adapter putting a [`Router`] behind the `weber-net` reactor.
/// Per-name ops go [`RouteClass::Deferred`] onto the asynchronous
/// outbound path; fan-out and topology ops go [`RouteClass::Control`]
/// (they block a worker for the broadcast, never the reactor); `health`
/// and unparseable lines are answered inline ([`RouteClass::Immediate`]).
struct RouterService {
    router: Arc<Router>,
}

impl weber_net::NdjsonService for RouterService {
    fn classify(&self, line: &str) -> RouteClass {
        match serde_json::parse_value(line) {
            Ok(v) => match v.get("op").and_then(serde::Value::as_str) {
                // A name-less `entities` is a blocking fan-out, so only
                // the named form may take the deferred path.
                Some("seed" | "ingest" | "resolve" | "same_as" | "constraint") => {
                    RouteClass::Deferred
                }
                Some("entities") if v.get("name").and_then(serde::Value::as_str).is_some() => {
                    RouteClass::Deferred
                }
                Some("health") => RouteClass::Immediate,
                _ => RouteClass::Control,
            },
            // Parse errors are answered locally without any backend
            // round trip; cheap enough for the reactor itself.
            Err(_) => RouteClass::Immediate,
        }
    }

    fn process(&self, line: &str) -> weber_net::Reply {
        let outcome = self.router.process_line(line);
        weber_net::Reply {
            line: outcome.response,
            shutdown: outcome.shutdown,
        }
    }

    fn process_deferred(&self, line: &str, responder: weber_net::Responder) {
        self.router.process_line_deferred(
            line,
            Box::new(move |outcome| {
                responder.respond(weber_net::Reply {
                    line: outcome.response,
                    shutdown: outcome.shutdown,
                });
            }),
        );
    }

    fn overloaded_reply(&self) -> String {
        protocol::err_response(&StreamError::Overloaded)
    }

    fn parse_error_reply(&self, detail: &str) -> String {
        protocol::err_response(&StreamError::Parse(detail.to_string()))
    }

    fn is_shutdown_line(&self, line: &str) -> bool {
        line.contains("shutdown") && protocol::is_shutdown(line)
    }
}

/// The epoll front end: one reactor, a shared worker pool, `net.*`
/// metrics in the router's registry.
fn route_listener_event(
    router: Arc<Router>,
    listener: TcpListener,
    options: &FrontOptions,
) -> std::io::Result<u64> {
    let registry = router.registry_handle();
    let service = Arc::new(RouterService { router });
    weber_net::serve(
        service,
        listener,
        ServerOptions {
            workers: options.workers,
            queue_capacity: options.queue_capacity,
            max_connections: options.max_connections.max(1),
            idle_timeout: options.idle_timeout,
            max_pipeline: options.max_pipeline,
            registry: Some(registry),
            ..ServerOptions::default()
        },
    )
}

/// The legacy thread-per-connection front end, selectable with
/// `--io threads`.
fn route_listener_threaded(
    router: Arc<Router>,
    listener: TcpListener,
    max_connections: usize,
) -> std::io::Result<u64> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

    while !shutdown.load(Ordering::Relaxed) {
        // Reap finished handler threads on every iteration — doing it
        // only on the WouldBlock branch let the vector grow without
        // bound under a steady stream of short-lived connections.
        handles.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, peer)) => {
                if active.load(Ordering::Relaxed) >= max_connections.max(1) {
                    refuse_connection(stream, &peer.to_string());
                    continue;
                }
                match spawn_handler(
                    Arc::clone(&router),
                    stream,
                    peer.to_string(),
                    Arc::clone(&shutdown),
                    Arc::clone(&active),
                    Arc::clone(&total),
                ) {
                    Ok(handle) => handles.push(handle),
                    Err(e) => eprintln!("weber route: connection setup failed ({peer}): {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                eprintln!("weber route: transient accept error: {e}");
            }
            Err(e) => {
                shutdown.store(true, Ordering::Relaxed);
                for handle in handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }

    for handle in handles {
        let _ = handle.join();
    }
    Ok(total.load(Ordering::Relaxed))
}

/// Answer an over-cap client with one `overloaded` error line and close.
fn refuse_connection(mut stream: TcpStream, peer: &str) {
    let _ = stream.set_nonblocking(false);
    let line = protocol::err_response(&StreamError::Overloaded);
    if writeln!(stream, "{line}").is_err() {
        eprintln!("weber route: could not refuse connection {peer}");
    }
}

/// Spawn the handler thread for one accepted client.
fn spawn_handler(
    router: Arc<Router>,
    stream: TcpStream,
    peer: String,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    total: Arc<AtomicU64>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    active.fetch_add(1, Ordering::Relaxed);
    Ok(std::thread::spawn(move || {
        let outcome = run_connection(&router, reader, &mut writer, Some(&shutdown));
        total.fetch_add(outcome.handled, Ordering::Relaxed);
        if outcome.saw_shutdown {
            shutdown.store(true, Ordering::Relaxed);
        }
        if let Some(e) = outcome.error {
            eprintln!("weber route: connection {peer}: {e} (closing this connection only)");
        }
        let _ = writer.flush();
        active.fetch_sub(1, Ordering::Relaxed);
    }))
}

/// True when the error is a read-timeout tick rather than a dead peer.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The shared connection loop: answer each line before reading the next;
/// stop on EOF, `shutdown`, a raised stop flag, or an I/O error.
fn run_connection<R: BufRead, W: Write>(
    router: &Router,
    mut reader: R,
    writer: &mut W,
    stop: Option<&AtomicBool>,
) -> ConnectionOutcome {
    let mut handled = 0u64;
    let mut saw_shutdown = false;
    let mut error: Option<std::io::Error> = None;
    // Partial lines survive read-timeout ticks: read_line appends, and the
    // buffer is only cleared once a complete line has been taken out.
    let mut buf = String::new();

    loop {
        if stop.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            break;
        }
        match reader.read_line(&mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                let line = buf.trim().to_string();
                buf.clear();
                if line.is_empty() {
                    continue;
                }
                let outcome = router.process_line(&line);
                handled += 1;
                if let Err(e) =
                    writeln!(writer, "{}", outcome.response).and_then(|()| writer.flush())
                {
                    error = Some(e);
                    break;
                }
                if outcome.shutdown {
                    saw_shutdown = true;
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Same recovery as `weber serve`: an invalid-UTF-8 line
                // has already been consumed through its newline, so answer
                // a parse error and keep the connection open.
                buf.clear();
                let reply = protocol::err_response(&StreamError::Parse(format!(
                    "line is not valid UTF-8: {e}"
                )));
                handled += 1;
                if let Err(e) = writeln!(writer, "{reply}").and_then(|()| writer.flush()) {
                    error = Some(e);
                    break;
                }
            }
            Err(e) if is_timeout(&e) => {}
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }

    if error.is_none() {
        if let Err(e) = writer.flush() {
            error = Some(e);
        }
    }
    ConnectionOutcome {
        handled,
        saw_shutdown,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterOptions;
    use std::io::Cursor;

    fn dead_router() -> Router {
        // Ports nobody listens on; enough for loop-shape tests.
        let backends = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        let options = RouterOptions {
            retries: 0,
            connect_timeout: Duration::from_millis(200),
            ..RouterOptions::default()
        };
        Router::new(backends, options).unwrap()
    }

    #[test]
    fn answers_each_line_in_order_and_recovers_from_garbage() {
        let router = dead_router();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"not json\n");
        input.extend_from_slice(b"\xff\xfe{broken\n");
        input.extend_from_slice(b"{\"op\":\"health\"}\n");
        let mut out: Vec<u8> = Vec::new();
        let outcome = run_connection(&router, Cursor::new(input), &mut out, None);
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        assert_eq!(outcome.handled, 3);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines[..2] {
            let v = serde_json::parse_value(line).unwrap();
            assert_eq!(v.get("kind").unwrap().as_str(), Some("parse"), "{line}");
        }
        let health = serde_json::parse_value(lines[2]).unwrap();
        assert_eq!(health.get("op").unwrap().as_str(), Some("health"));
    }

    #[test]
    fn a_raised_stop_flag_ends_the_loop_before_reading() {
        let router = dead_router();
        let stop = AtomicBool::new(true);
        let mut out: Vec<u8> = Vec::new();
        let outcome = run_connection(
            &router,
            Cursor::new(b"{\"op\":\"health\"}\n".to_vec()),
            &mut out,
            Some(&stop),
        );
        assert_eq!(outcome.handled, 0);
        assert!(!outcome.saw_shutdown);
    }

    #[test]
    fn shutdown_stops_after_answering_and_skips_later_lines() {
        let router = dead_router();
        let input = b"{\"op\":\"shutdown\"}\n{\"op\":\"health\"}\n".to_vec();
        let mut out: Vec<u8> = Vec::new();
        let outcome = run_connection(&router, Cursor::new(input), &mut out, None);
        assert!(outcome.saw_shutdown);
        assert_eq!(outcome.handled, 1);
        let text = String::from_utf8(out).unwrap();
        let v = serde_json::parse_value(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("shutdown"));
        // Backends are all dead, so even the shutdown broadcast degrades —
        // but the tier still acknowledges and stops.
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
    }
}
