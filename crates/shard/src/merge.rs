//! Merging fan-out responses into one well-formed reply.
//!
//! Fan-out ops (`snapshot`, `metrics`, `persist`, `restore`, `flush`,
//! `shutdown`) are broadcast to every backend; the per-shard outcomes come
//! back here to be folded into a single response line. A dead backend
//! degrades the answer instead of failing it: the merged reply stays
//! `ok:true`, carries what the reachable shards returned, and marks
//! itself with `"degraded":true` plus the list of unreachable shards.
//! The snapshot merge is additionally replica-aware: duplicate copies of
//! a name collapse to the preferred replica's entry, and fewer backend
//! failures than the replication factor do not degrade the reply at all
//! (see [`merge_snapshot`]).

use serde::Value;
use weber_obs::{BucketCount, HistogramSnapshot, MetricsSnapshot};

use crate::ring::HashRing;

/// One backend's contribution to a fan-out: either its parsed reply or a
/// transport-level error message.
pub struct ShardOutcome {
    /// Ring index of the backend.
    pub index: usize,
    /// Backend address, for the unreachable list.
    pub addr: String,
    /// Parsed reply, or why the shard could not answer.
    pub result: Result<Value, String>,
}

/// Append a field to a JSON object value (no-op on non-objects).
pub fn push_field(value: &mut Value, key: &str, field: Value) {
    if let Value::Object(entries) = value {
        entries.push((key.to_string(), field));
    }
}

pub(crate) fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("merged responses serialise")
}

pub(crate) fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A backend reply counts as usable only when it parsed and says
/// `ok:true`; an explicit error reply (e.g. `persist` without a state
/// dir) degrades the merge the same way a dead socket does.
fn failure_of(outcome: &ShardOutcome) -> Option<String> {
    match &outcome.result {
        Err(e) => Some(e.clone()),
        Ok(v) if v.get("ok").and_then(Value::as_bool) == Some(true) => None,
        Ok(v) => Some(
            v.get("error")
                .and_then(Value::as_str)
                .unwrap_or("backend returned a malformed reply")
                .to_string(),
        ),
    }
}

/// `degraded` / `unreachable` markers for a merged reply; empty when every
/// shard answered.
pub(crate) fn degraded_fields(outcomes: &[ShardOutcome]) -> Vec<(&'static str, Value)> {
    let unreachable: Vec<Value> = outcomes
        .iter()
        .filter_map(|o| {
            failure_of(o).map(|error| {
                object(vec![
                    ("shard", Value::Number(o.index as f64)),
                    ("addr", Value::String(o.addr.clone())),
                    ("error", Value::String(error)),
                ])
            })
        })
        .collect();
    if unreachable.is_empty() {
        Vec::new()
    } else {
        vec![
            ("degraded", Value::Bool(true)),
            ("unreachable", Value::Array(unreachable)),
        ]
    }
}

/// Merge `snapshot` replies: concatenate the per-name entries, tag each
/// with its reporting shard, sort by name for deterministic output.
///
/// Replica-aware on two counts. First, under replication (and after
/// topology changes) several shards may report the same name; each name
/// keeps exactly one entry — the copy from the shard earliest in the
/// name's replica set ([`HashRing::successors`]), falling back to the
/// lowest shard index for stale copies outside the current set. Second,
/// the merged reply is only marked `degraded` when the number of failed
/// shards reaches `replication`: below that, the replica invariant
/// guarantees every name still has a live copy in the merge, so the
/// snapshot is complete even though a backend is down.
pub fn merge_snapshot(outcomes: &[ShardOutcome], ring: &HashRing, replication: usize) -> String {
    merge_named_fanout("snapshot", outcomes, ring, replication)
}

/// Merge name-less `entities` replies: the same replica-aware fold as
/// [`merge_snapshot`] — one entity table per name (the preferred
/// replica's copy, so a tier running below R never emits a name's
/// entities twice), sorted by name, degraded only at `replication`
/// failures.
pub fn merge_entities(outcomes: &[ShardOutcome], ring: &HashRing, replication: usize) -> String {
    merge_named_fanout("entities", outcomes, ring, replication)
}

/// The shared replica-aware merge behind [`merge_snapshot`] and
/// [`merge_entities`]: both ops fan out to every backend and come back
/// as a `names` array of per-name objects, so the dedup-by-replica-rank
/// and degraded-only-at-R logic is one piece of code.
fn merge_named_fanout(
    op: &str,
    outcomes: &[ShardOutcome],
    ring: &HashRing,
    replication: usize,
) -> String {
    let replication = replication.clamp(1, ring.len());
    let mut entries: Vec<(String, usize, Value)> = Vec::new();
    for outcome in outcomes {
        if failure_of(outcome).is_some() {
            continue;
        }
        let Ok(reply) = &outcome.result else { continue };
        let Some(names) = reply.get("names").and_then(Value::as_array) else {
            continue;
        };
        for entry in names {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let mut entry = entry.clone();
            push_field(&mut entry, "shard", Value::Number(outcome.index as f64));
            entries.push((name, outcome.index, entry));
        }
    }
    // Preference of a copy: its shard's position in the name's replica
    // set, then the shard index as a stable tie-break for copies a
    // topology change stranded outside the set.
    let rank = |name: &str, shard: usize| {
        let set = ring.successors(name, replication);
        (
            set.iter()
                .position(|&idx| idx == shard)
                .unwrap_or(set.len()),
            shard,
        )
    };
    entries.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| rank(&a.0, a.1).cmp(&rank(&b.0, b.1)))
    });
    entries.dedup_by(|b, a| a.0 == b.0);
    let names: Vec<Value> = entries.into_iter().map(|(_, _, entry)| entry).collect();
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String(op.into())),
        ("names", Value::Array(names)),
    ];
    let failed = outcomes.iter().filter(|o| failure_of(o).is_some()).count();
    if failed >= replication {
        fields.extend(degraded_fields(outcomes));
    }
    render(&object(fields))
}

/// Merge `persist` / `restore` replies: sum the per-shard name counts.
pub fn merge_count(op: &str, outcomes: &[ShardOutcome]) -> String {
    let total: u64 = outcomes
        .iter()
        .filter(|o| failure_of(o).is_none())
        .filter_map(|o| o.result.as_ref().ok())
        .filter_map(|v| v.get("names").and_then(Value::as_u64))
        .sum();
    let mut fields = vec![
        ("ok", Value::Bool(true)),
        ("op", Value::String(op.into())),
        ("names", Value::Number(total as f64)),
    ];
    fields.extend(degraded_fields(outcomes));
    render(&object(fields))
}

/// Merge `flush` / `shutdown` replies: a plain acknowledgement, degraded
/// when some shard never acknowledged.
pub fn merge_plain(op: &str, outcomes: &[ShardOutcome]) -> String {
    let mut fields = vec![("ok", Value::Bool(true)), ("op", Value::String(op.into()))];
    fields.extend(degraded_fields(outcomes));
    render(&object(fields))
}

/// Merge `metrics` replies: parse each backend's snapshot back into a
/// [`MetricsSnapshot`], namespace it under `shard<i>.`, fold all of them
/// plus the router's own metrics into one reply.
pub fn merge_metrics(router_own: MetricsSnapshot, outcomes: &[ShardOutcome]) -> String {
    let mut merged = router_own;
    for outcome in outcomes {
        if failure_of(outcome).is_some() {
            continue;
        }
        let Ok(reply) = &outcome.result else { continue };
        merged.merge_namespaced(
            &format!("shard{}", outcome.index),
            snapshot_from_wire(reply),
        );
    }
    let mut body = weber_stream::protocol::metrics_value(&merged);
    for (key, value) in degraded_fields(outcomes) {
        push_field(&mut body, key, value);
    }
    render(&body)
}

/// Reconstruct a [`MetricsSnapshot`] from a backend's `metrics` reply (the
/// inverse of [`weber_stream::protocol::metrics_value`]). Unparseable
/// entries are skipped — a version-skewed backend degrades its own
/// metrics, not the whole merge.
pub fn snapshot_from_wire(reply: &Value) -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot::default();
    if let Some(counters) = reply.get("counters").and_then(Value::as_object) {
        for (name, v) in counters {
            if let Some(n) = v.as_u64() {
                snapshot.counters.push((name.clone(), n));
            }
        }
    }
    if let Some(gauges) = reply.get("gauges").and_then(Value::as_object) {
        for (name, v) in gauges {
            if let Some(n) = v.as_f64() {
                snapshot.gauges.push((name.clone(), n as i64));
            }
        }
    }
    if let Some(histograms) = reply.get("histograms").and_then(Value::as_object) {
        for (name, h) in histograms {
            let (Some(count), Some(sum)) = (
                h.get("count").and_then(Value::as_u64),
                h.get("sum").and_then(Value::as_u64),
            ) else {
                continue;
            };
            let mut buckets = Vec::new();
            for bucket in h.get("buckets").and_then(Value::as_array).unwrap_or(&[]) {
                let Some(n) = bucket.get("count").and_then(Value::as_u64) else {
                    continue;
                };
                let bound = match bucket.get("le").and_then(Value::as_str) {
                    Some("+Inf") => BucketCount::Overflow,
                    Some(le) => match le.parse::<u64>() {
                        Ok(b) => BucketCount::Le(b),
                        Err(_) => continue,
                    },
                    None => continue,
                };
                buckets.push((bound, n));
            }
            snapshot.histograms.push(HistogramSnapshot {
                name: name.clone(),
                count,
                sum,
                min: h.get("min").and_then(Value::as_u64).unwrap_or(0),
                max: h.get("max").and_then(Value::as_u64).unwrap_or(0),
                buckets,
            });
        }
    }
    snapshot
}

/// A router-originated error reply carrying the same `ok`/`error`/`kind`
/// contract the backends use, plus any routing context fields.
pub fn err_with_kind(message: &str, kind: &str, extra: Vec<(&str, Value)>) -> String {
    let mut fields = vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(message.to_string())),
        ("kind", Value::String(kind.to_string())),
    ];
    fields.extend(extra);
    render(&object(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_outcome(index: usize, json: &str) -> ShardOutcome {
        ShardOutcome {
            index,
            addr: format!("127.0.0.1:{}", 7000 + index),
            result: Ok(serde_json::parse_value(json).unwrap()),
        }
    }

    fn dead_outcome(index: usize) -> ShardOutcome {
        ShardOutcome {
            index,
            addr: format!("127.0.0.1:{}", 7000 + index),
            result: Err("connect: connection refused".into()),
        }
    }

    fn ring(n: usize) -> HashRing {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect();
        HashRing::new(&addrs, 64)
    }

    #[test]
    fn snapshot_merge_concatenates_sorts_and_tags() {
        let merged = merge_snapshot(
            &[
                ok_outcome(
                    0,
                    r#"{"ok":true,"op":"snapshot","names":[{"name":"smith","docs":2}]}"#,
                ),
                ok_outcome(
                    1,
                    r#"{"ok":true,"op":"snapshot","names":[{"name":"cohen","docs":3}]}"#,
                ),
            ],
            &ring(2),
            1,
        );
        let v = serde_json::parse_value(&merged).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(v.get("degraded").is_none(), "all shards answered: {merged}");
        let names = v.get("names").unwrap().as_array().unwrap();
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].get("name").unwrap().as_str(), Some("cohen"));
        assert_eq!(names[0].get("shard").unwrap().as_u64(), Some(1));
        assert_eq!(names[1].get("name").unwrap().as_str(), Some("smith"));
        assert_eq!(names[1].get("shard").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn snapshot_merge_dedupes_replicated_names_by_ring_preference() {
        let ring = ring(3);
        let set = ring.successors("cohen", 2);
        // Both replicas report the name; the merged snapshot must keep
        // exactly one copy — the primary's — and stay non-degraded.
        let merged = merge_snapshot(
            &[
                ok_outcome(
                    set[0],
                    r#"{"ok":true,"op":"snapshot","names":[{"name":"cohen","docs":5}]}"#,
                ),
                ok_outcome(
                    set[1],
                    r#"{"ok":true,"op":"snapshot","names":[{"name":"cohen","docs":5}]}"#,
                ),
            ],
            &ring,
            2,
        );
        let v = serde_json::parse_value(&merged).unwrap();
        let names = v.get("names").unwrap().as_array().unwrap();
        assert_eq!(names.len(), 1, "one entry per name: {merged}");
        assert_eq!(
            names[0].get("shard").unwrap().as_u64(),
            Some(set[0] as u64),
            "the primary's copy wins"
        );
    }

    #[test]
    fn entities_merge_keeps_one_table_per_name_under_replication() {
        let ring = ring(3);
        let set = ring.successors("cohen", 2);
        let table = r#"{"ok":true,"op":"entities","names":[{"name":"cohen","docs":4,"entities":[{"id":1,"mentions":[0,1]}]}]}"#;
        // Both replicas hold the name's entity table; the fan-out must
        // emit it once, from the preferred replica, and op stays
        // `entities`.
        let merged = merge_entities(
            &[ok_outcome(set[0], table), ok_outcome(set[1], table)],
            &ring,
            2,
        );
        let v = serde_json::parse_value(&merged).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("entities"));
        let names = v.get("names").unwrap().as_array().unwrap();
        assert_eq!(names.len(), 1, "{merged}");
        assert_eq!(names[0].get("shard").unwrap().as_u64(), Some(set[0] as u64));
        // One replica down stays non-degraded below R.
        let merged = merge_entities(&[ok_outcome(set[1], table), dead_outcome(set[0])], &ring, 2);
        let v = serde_json::parse_value(&merged).unwrap();
        assert!(v.get("degraded").is_none(), "{merged}");
        assert_eq!(v.get("names").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn snapshot_merge_suppresses_degraded_below_the_replication_factor() {
        let ring = ring(3);
        let set = ring.successors("cohen", 2);
        let entry = r#"{"ok":true,"op":"snapshot","names":[{"name":"cohen","docs":5}]}"#;
        // Primary dead, replica answering: with R=2 the replica invariant
        // says coverage is still complete, so no degraded marker …
        let merged = merge_snapshot(&[ok_outcome(set[1], entry), dead_outcome(set[0])], &ring, 2);
        let v = serde_json::parse_value(&merged).unwrap();
        assert!(v.get("degraded").is_none(), "{merged}");
        assert_eq!(v.get("names").unwrap().as_array().unwrap().len(), 1);
        // … but R failures can lose names, and must degrade the reply.
        let merged = merge_snapshot(&[dead_outcome(set[0]), dead_outcome(set[1])], &ring, 2);
        let v = serde_json::parse_value(&merged).unwrap();
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true), "{merged}");
    }

    #[test]
    fn dead_shards_degrade_the_merge_instead_of_failing_it() {
        let merged = merge_snapshot(
            &[
                ok_outcome(
                    0,
                    r#"{"ok":true,"op":"snapshot","names":[{"name":"smith","docs":2}]}"#,
                ),
                dead_outcome(1),
            ],
            &ring(2),
            1,
        );
        let v = serde_json::parse_value(&merged).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
        let unreachable = v.get("unreachable").unwrap().as_array().unwrap();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].get("shard").unwrap().as_u64(), Some(1));
        assert_eq!(
            unreachable[0].get("error").unwrap().as_str(),
            Some("connect: connection refused")
        );
        assert_eq!(v.get("names").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn explicit_error_replies_also_degrade() {
        let merged = merge_count(
            "persist",
            &[
                ok_outcome(0, r#"{"ok":true,"op":"persist","names":4}"#),
                ok_outcome(
                    1,
                    r#"{"ok":false,"error":"persistence: no state dir","kind":"persistence"}"#,
                ),
            ],
        );
        let v = serde_json::parse_value(&merged).unwrap();
        assert_eq!(v.get("names").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
        let unreachable = v.get("unreachable").unwrap().as_array().unwrap();
        assert_eq!(
            unreachable[0].get("error").unwrap().as_str(),
            Some("persistence: no state dir")
        );
    }

    #[test]
    fn count_and_plain_merges_sum_and_acknowledge() {
        let outcomes = vec![
            ok_outcome(0, r#"{"ok":true,"op":"restore","names":2}"#),
            ok_outcome(1, r#"{"ok":true,"op":"restore","names":5}"#),
        ];
        let v = serde_json::parse_value(&merge_count("restore", &outcomes)).unwrap();
        assert_eq!(v.get("names").unwrap().as_u64(), Some(7));
        let v = serde_json::parse_value(&merge_plain("flush", &outcomes)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("flush"));
    }

    #[test]
    fn metrics_roundtrip_through_the_wire_format() {
        let registry = weber_obs::Registry::new();
        registry.counter("stream.ingested").add(9);
        registry.gauge("stream.queue_depth").set(-1);
        registry.histogram("stream.ingest_us").record(1_500);
        let wire =
            serde_json::parse_value(&weber_stream::protocol::ok_metrics(&registry.snapshot()))
                .unwrap();
        let back = snapshot_from_wire(&wire);
        assert_eq!(back.counter("stream.ingested"), Some(9));
        assert_eq!(back.gauge("stream.queue_depth"), Some(-1));
        let hist = back.histogram("stream.ingest_us").unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 1_500);
        assert_eq!(hist.buckets.last().unwrap().0, BucketCount::Overflow);
    }

    #[test]
    fn metrics_merge_namespaces_backend_snapshots() {
        let backend = weber_obs::Registry::new();
        backend.counter("stream.ingested").add(3);
        let wire = weber_stream::protocol::ok_metrics(&backend.snapshot());
        let router = weber_obs::Registry::new();
        router.counter("route.requests").add(11);
        let merged = merge_metrics(
            router.snapshot(),
            &[
                ShardOutcome {
                    index: 0,
                    addr: "a:1".into(),
                    result: Ok(serde_json::parse_value(&wire).unwrap()),
                },
                dead_outcome(1),
            ],
        );
        let v = serde_json::parse_value(&merged).unwrap();
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("route.requests").unwrap().as_u64(), Some(11));
        assert_eq!(
            counters.get("shard0.stream.ingested").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn err_with_kind_carries_context_fields() {
        let line = err_with_kind(
            "shard 2 (127.0.0.1:7002) is unreachable: connection refused",
            "unreachable",
            vec![
                ("shard", Value::Number(2.0)),
                ("degraded", Value::Bool(true)),
            ],
        );
        let v = serde_json::parse_value(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("unreachable"));
        assert_eq!(v.get("shard").unwrap().as_u64(), Some(2));
    }
}
