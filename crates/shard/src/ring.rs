//! Consistent-hash ring over backend addresses.
//!
//! Every piece of `weber serve` state is keyed by the ambiguous `name`, so
//! routing is *exact*: the ring maps a name to the one backend that owns
//! every document, model and cluster for it. Virtual nodes (`replicas`
//! points per backend) smooth the key distribution; FNV-1a is used instead
//! of [`std::collections::hash_map::DefaultHasher`] because the router and
//! its operators must agree on placement across processes and restarts,
//! and `DefaultHasher` is randomly seeded per process.

/// 64-bit FNV-1a. Stable across processes, platforms and releases — the
/// ring's placement function is part of the deployment contract (a
/// restarted router must route every name to the same backend).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A 64-bit avalanche finalizer (MurmurHash3's fmix64). FNV-1a mixes
/// weakly on short, near-identical keys — vnode keys are exactly that
/// (`addr#0`, `addr#1`, …) and raw FNV points cluster badly enough to
/// skew the ring 5:1. The finalizer's constants are as fixed as FNV's, so
/// placement stays part of the deployment contract.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The ring position of a key: FNV-1a, then the avalanche finalizer.
fn point(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// A consistent-hash ring: `replicas` virtual points per backend, names
/// owned by the first point clockwise from their hash.
#[derive(Debug, Clone)]
pub struct HashRing {
    backends: Vec<String>,
    /// Sorted (point, backend index) pairs.
    points: Vec<(u64, usize)>,
    replicas: usize,
}

impl HashRing {
    /// Build a ring. `backends` must be non-empty; `replicas` of 0 is
    /// bumped to 1.
    pub fn new(backends: &[String], replicas: usize) -> Self {
        assert!(!backends.is_empty(), "a ring needs at least one backend");
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(backends.len() * replicas);
        for (idx, addr) in backends.iter().enumerate() {
            for r in 0..replicas {
                points.push((point(format!("{addr}#{r}").as_bytes()), idx));
            }
        }
        // Ties (identical points from distinct backends) are broken by
        // backend index so ownership stays deterministic either way.
        points.sort_unstable();
        HashRing {
            backends: backends.to_vec(),
            points,
            replicas,
        }
    }

    /// Index of the backend owning `name`.
    pub fn owner(&self, name: &str) -> usize {
        let h = point(name.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[at % self.points.len()];
        idx
    }

    /// The backend addresses, in declaration order (ring indices refer to
    /// this slice).
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Always false — rings are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Virtual points per backend.
    pub fn replicas(&self) -> usize {
        self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        let ring = HashRing::new(&addrs(3), 64);
        for name in ["cohen", "smith", "johnson", "miller", ""] {
            let a = ring.owner(name);
            assert!(a < 3);
            assert_eq!(a, ring.owner(name), "owner must be stable");
            assert_eq!(a, HashRing::new(&addrs(3), 64).owner(name));
        }
    }

    #[test]
    fn load_spreads_across_backends() {
        let ring = HashRing::new(&addrs(4), 64);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ring.owner(&format!("name-{i}"))] += 1;
        }
        for (idx, &c) in counts.iter().enumerate() {
            // Perfect balance would be 1000; vnodes should keep every
            // backend within a loose band of it.
            assert!(
                (400..=1800).contains(&c),
                "backend {idx} owns {c} of 4000 names: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_names() {
        let full = HashRing::new(&addrs(4), 64);
        // Drop the last backend; survivors keep their indices.
        let reduced = HashRing::new(&addrs(3), 64);
        for i in 0..2000 {
            let name = format!("name-{i}");
            let before = full.owner(&name);
            if before < 3 {
                assert_eq!(
                    reduced.owner(&name),
                    before,
                    "{name} moved off a surviving backend"
                );
            }
        }
    }

    #[test]
    fn zero_replicas_still_routes() {
        let ring = HashRing::new(&addrs(2), 0);
        assert_eq!(ring.replicas(), 1);
        assert!(ring.owner("cohen") < 2);
    }
}
