//! Consistent-hash ring over backend addresses.
//!
//! Every piece of `weber serve` state is keyed by the ambiguous `name`, so
//! routing is *exact*: the ring maps a name to the backend that owns
//! every document, model and cluster for it — and, under replication, to
//! the `r - 1` distinct successors that hold copies. Virtual nodes
//! (`vnodes` points per backend) smooth the key distribution; FNV-1a is
//! used instead of [`std::collections::hash_map::DefaultHasher`] because
//! the router and its operators must agree on placement across processes
//! and restarts, and `DefaultHasher` is randomly seeded per process.

/// 64-bit FNV-1a. Stable across processes, platforms and releases — the
/// ring's placement function is part of the deployment contract (a
/// restarted router must route every name to the same backend).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A 64-bit avalanche finalizer (MurmurHash3's fmix64). FNV-1a mixes
/// weakly on short, near-identical keys — vnode keys are exactly that
/// (`addr#0`, `addr#1`, …) and raw FNV points cluster badly enough to
/// skew the ring 5:1. The finalizer's constants are as fixed as FNV's, so
/// placement stays part of the deployment contract.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The ring position of a key: FNV-1a, then the avalanche finalizer.
fn point(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// A consistent-hash ring: `vnodes` virtual points per backend, names
/// owned by the first point clockwise from their hash. Replica sets are
/// the next distinct backends clockwise ([`successors`](Self::successors)).
#[derive(Debug, Clone)]
pub struct HashRing {
    backends: Vec<String>,
    /// Sorted (point, backend index) pairs.
    points: Vec<(u64, usize)>,
    vnodes: usize,
}

impl HashRing {
    /// Build a ring. `backends` must be non-empty; `vnodes` of 0 is
    /// bumped to 1.
    pub fn new(backends: &[String], vnodes: usize) -> Self {
        assert!(!backends.is_empty(), "a ring needs at least one backend");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends.len() * vnodes);
        for (idx, addr) in backends.iter().enumerate() {
            for r in 0..vnodes {
                points.push((point(format!("{addr}#{r}").as_bytes()), idx));
            }
        }
        // Ties (identical points from distinct backends) are broken by
        // backend index so ownership stays deterministic either way.
        points.sort_unstable();
        HashRing {
            backends: backends.to_vec(),
            points,
            vnodes,
        }
    }

    /// Index of the backend owning `name` (the first entry of its
    /// replica set).
    pub fn owner(&self, name: &str) -> usize {
        let h = point(name.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.points[at % self.points.len()];
        idx
    }

    /// The first `r` *distinct* backends clockwise from `name`'s ring
    /// position: the name's replica set, primary first. `r` is clamped to
    /// `[1, backends]`, so a replication factor larger than the tier
    /// degrades gracefully instead of asking for impossible copies. The
    /// walk is part of the same deployment contract as [`owner`](Self::owner):
    /// every router over the same backend list computes the same sets.
    pub fn successors(&self, name: &str, r: usize) -> Vec<usize> {
        let r = r.clamp(1, self.backends.len());
        let h = point(name.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut set = Vec::with_capacity(r);
        for offset in 0..self.points.len() {
            let (_, idx) = self.points[(start + offset) % self.points.len()];
            if !set.contains(&idx) {
                set.push(idx);
                if set.len() == r {
                    break;
                }
            }
        }
        set
    }

    /// The backend addresses, in declaration order (ring indices refer to
    /// this slice).
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Always false — rings are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Virtual points per backend.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn ownership_is_deterministic_and_in_range() {
        let ring = HashRing::new(&addrs(3), 64);
        for name in ["cohen", "smith", "johnson", "miller", ""] {
            let a = ring.owner(name);
            assert!(a < 3);
            assert_eq!(a, ring.owner(name), "owner must be stable");
            assert_eq!(a, HashRing::new(&addrs(3), 64).owner(name));
        }
    }

    #[test]
    fn load_spreads_across_backends() {
        let ring = HashRing::new(&addrs(4), 64);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[ring.owner(&format!("name-{i}"))] += 1;
        }
        for (idx, &c) in counts.iter().enumerate() {
            // Perfect balance would be 1000; vnodes should keep every
            // backend within a loose band of it.
            assert!(
                (400..=1800).contains(&c),
                "backend {idx} owns {c} of 4000 names: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_names() {
        let full = HashRing::new(&addrs(4), 64);
        // Drop the last backend; survivors keep their indices.
        let reduced = HashRing::new(&addrs(3), 64);
        for i in 0..2000 {
            let name = format!("name-{i}");
            let before = full.owner(&name);
            if before < 3 {
                assert_eq!(
                    reduced.owner(&name),
                    before,
                    "{name} moved off a surviving backend"
                );
            }
        }
    }

    #[test]
    fn zero_vnodes_still_routes() {
        let ring = HashRing::new(&addrs(2), 0);
        assert_eq!(ring.vnodes(), 1);
        assert!(ring.owner("cohen") < 2);
    }

    #[test]
    fn successors_start_at_the_owner_and_are_distinct() {
        let ring = HashRing::new(&addrs(4), 64);
        for name in ["cohen", "smith", "johnson", "miller", ""] {
            for r in 1..=4 {
                let set = ring.successors(name, r);
                assert_eq!(set.len(), r, "{name} r={r}");
                assert_eq!(set[0], ring.owner(name), "primary first");
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), r, "distinct backends: {set:?}");
                assert_eq!(set, ring.successors(name, r), "deterministic");
            }
        }
    }

    #[test]
    fn successors_clamp_to_the_backend_count() {
        let ring = HashRing::new(&addrs(3), 64);
        assert_eq!(ring.successors("cohen", 0).len(), 1);
        let all = ring.successors("cohen", 99);
        assert_eq!(all.len(), 3, "r clamps to the tier size");
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "every backend appears once");
    }

    #[test]
    fn replica_sets_spread_like_primaries() {
        // The second replica must not pile onto one backend: count
        // appearances of each backend anywhere in the r=2 sets.
        let ring = HashRing::new(&addrs(4), 64);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            for idx in ring.successors(&format!("name-{i}"), 2) {
                counts[idx] += 1;
            }
        }
        for (idx, &c) in counts.iter().enumerate() {
            // Perfect balance would be 2000 (8000 slots over 4 backends).
            assert!(
                (900..=3400).contains(&c),
                "backend {idx} holds {c} of 8000 replica slots: {counts:?}"
            );
        }
    }
}
