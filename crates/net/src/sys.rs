//! Raw Linux syscall bindings: `epoll`, `eventfd`, non-blocking
//! `connect` and `RLIMIT_NOFILE`.
//!
//! The build environment is offline and Linux-only, so instead of pulling
//! in `libc`/`mio`/`tokio` this module declares the half-dozen foreign
//! functions the reactor needs and wraps them in safe, `OwnedFd`-backed
//! types. Everything else in the crate goes through these wrappers.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};

// O_CLOEXEC / EFD_CLOEXEC / SOCK_CLOEXEC share the same bit on Linux.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const EINPROGRESS: i32 = 115;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const RLIMIT_NOFILE: c_int = 7;

/// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI quirk),
/// naturally aligned everywhere else.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// Kernel `struct sockaddr_in` (IPv4).
#[repr(C)]
struct SockAddrV4 {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// Kernel `struct sockaddr_in6` (IPv6).
#[repr(C)]
struct SockAddrV6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// Add, modify or delete one fd's registration.
    pub fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) })?;
        Ok(())
    }

    /// Wait for readiness; fills `events` (up to its capacity) and returns
    /// the count. A negative `timeout_ms` blocks indefinitely; `EINTR`
    /// reports zero events instead of failing.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

/// An owned eventfd used to wake a sleeping `epoll_wait` from another
/// thread (workers posting completions).
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Create a non-blocking, close-on-exec eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for poller registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Post one wake-up (adds 1 to the eventfd counter). Errors are
    /// ignored: the only failure mode of interest, a full counter, still
    /// leaves the fd readable.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe {
            write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast::<c_void>(),
                8,
            );
        }
    }

    /// Consume all pending wake-ups.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            read(
                self.fd.as_raw_fd(),
                (&mut buf as *mut u64).cast::<c_void>(),
                8,
            );
        }
    }
}

/// What a [`connect_nonblocking`] call produced.
pub enum ConnectProgress {
    /// The TCP handshake finished inside the `connect` call itself
    /// (loopback often does); the stream is usable immediately.
    Ready(TcpStream),
    /// The handshake is in flight. Register the stream for *write*
    /// interest: `EPOLLOUT` fires when it resolves, and
    /// [`connect_outcome`] reads whether it succeeded.
    Pending(TcpStream),
}

/// Begin a non-blocking TCP connect to `addr`. The socket is created
/// `SOCK_NONBLOCK | SOCK_CLOEXEC`, so neither the socket creation nor the
/// connect ever blocks the calling thread.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<ConnectProgress> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET as c_int,
        SocketAddr::V6(_) => AF_INET6 as c_int,
    };
    let fd = cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    let ret = match addr {
        SocketAddr::V4(v4) => {
            let raw = SockAddrV4 {
                sin_family: AF_INET,
                sin_port: v4.port().to_be(),
                sin_addr: u32::from(*v4.ip()).to_be(),
                sin_zero: [0; 8],
            };
            unsafe {
                connect(
                    owned.as_raw_fd(),
                    (&raw as *const SockAddrV4).cast::<c_void>(),
                    std::mem::size_of::<SockAddrV4>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let raw = SockAddrV6 {
                sin6_family: AF_INET6,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            unsafe {
                connect(
                    owned.as_raw_fd(),
                    (&raw as *const SockAddrV6).cast::<c_void>(),
                    std::mem::size_of::<SockAddrV6>() as u32,
                )
            }
        }
    };
    let stream = TcpStream::from(owned);
    if ret == 0 {
        return Ok(ConnectProgress::Ready(stream));
    }
    let err = io::Error::last_os_error();
    // EINTR: POSIX says the handshake continues asynchronously, same as
    // EINPROGRESS.
    if err.raw_os_error() == Some(EINPROGRESS) || err.kind() == io::ErrorKind::Interrupted {
        Ok(ConnectProgress::Pending(stream))
    } else {
        Err(err)
    }
}

/// After `EPOLLOUT` fires on a pending connect: did the handshake
/// succeed? Reads (and clears) the socket's `SO_ERROR`.
pub fn connect_outcome(stream: &TcpStream) -> io::Result<()> {
    match stream.take_error()? {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit and return the new
/// soft limit. Front ends and the load generator call this so tens of
/// thousands of sockets do not trip the default 1024-fd soft cap.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        lim.rlim_cur = lim.rlim_max;
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_wake_an_epoll_wait() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.ctl(EPOLL_CTL_ADD, efd.raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: times out with zero events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        efd.signal();
        efd.signal();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_is_at_least_the_soft_default() {
        let limit = raise_nofile_limit().unwrap();
        assert!(limit >= 1024, "soft nofile limit suspiciously low: {limit}");
    }

    #[test]
    fn nonblocking_connect_completes_under_epoll() {
        use std::io::{BufRead, BufReader, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut w = stream;
            w.write_all(line.as_bytes()).unwrap();
        });
        let stream = match connect_nonblocking(&addr).unwrap() {
            ConnectProgress::Ready(s) => s,
            ConnectProgress::Pending(s) => {
                let epoll = Epoll::new().unwrap();
                epoll
                    .ctl(EPOLL_CTL_ADD, s.as_raw_fd(), EPOLLOUT, 1)
                    .unwrap();
                let mut events = [EpollEvent { events: 0, data: 0 }; 4];
                let n = epoll.wait(&mut events, 2000).unwrap();
                assert_eq!(n, 1, "connect readiness never fired");
                connect_outcome(&s).unwrap();
                s
            }
        };
        // The socket is genuinely non-blocking and usable end to end.
        let mut w = stream.try_clone().unwrap();
        w.write_all(b"ping\n").unwrap();
        stream.set_nonblocking(false).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ping\n");
        echo.join().unwrap();
    }

    #[test]
    fn nonblocking_connect_to_a_dead_port_reports_the_error() {
        // Bind-then-drop yields a port nobody listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(&addr) {
            // Loopback refusals may surface synchronously or via SO_ERROR.
            Err(_) => {}
            Ok(ConnectProgress::Ready(_)) => panic!("connect to a dead port reported ready"),
            Ok(ConnectProgress::Pending(s)) => {
                let epoll = Epoll::new().unwrap();
                epoll
                    .ctl(EPOLL_CTL_ADD, s.as_raw_fd(), EPOLLOUT, 1)
                    .unwrap();
                let mut events = [EpollEvent { events: 0, data: 0 }; 4];
                epoll.wait(&mut events, 2000).unwrap();
                assert!(connect_outcome(&s).is_err());
            }
        }
    }
}
