//! The bounded dispatch queue between the reactor and the request
//! workers.
//!
//! The reactor thread must never block, so admission follows the serving
//! tiers' established contract: *data-plane* lines (writes and per-name
//! reads) are shed with an `overloaded` reply when their worker's queue
//! is full, while *control-plane* lines (snapshot, flush, shutdown, …)
//! are always enqueued — they are rare, and shedding a shutdown would be
//! absurd. Sticky routing (`RouteClass::Data(key)` → `key % workers`)
//! keeps every line with the same key on one FIFO worker, so same-name
//! requests execute in admission order even though replies come back to
//! the reactor out of global order.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::poller::Waker;
use crate::server::{NdjsonService, Reply};

/// Where a request line should execute, decided by the service before
/// dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteClass {
    /// Sheddable request pinned to worker `key % workers`. Lines sharing
    /// a key (same entity name) execute in admission order.
    Data(u64),
    /// Request pinned to `connection % workers` and never shed: every
    /// line of one connection executes in admission order, reproducing a
    /// synchronous per-connection loop. Backpressure comes from the
    /// pipelining valve instead of shedding.
    PerConnection,
    /// Rare request that must never be shed; runs on worker 0 in
    /// admission order with every other control request.
    Control,
    /// Cheap request answered synchronously on the reactor thread,
    /// bypassing the queues entirely (health probes of a saturated tier).
    Immediate,
    /// Request handed to [`NdjsonService::process_deferred`] on the
    /// reactor thread with a [`crate::Responder`]: the service starts
    /// asynchronous work (an outbound backend exchange) and answers
    /// later through the completion channel. Never queued, never shed —
    /// backpressure comes from the pipelining valve, exactly as for
    /// `PerConnection` lines.
    Deferred,
}

/// One completed request, posted back to the reactor.
pub struct Completion {
    /// The connection the line arrived on.
    pub conn: u64,
    /// The line's per-connection admission sequence number.
    pub seq: u64,
    /// The reply to deliver at that position.
    pub reply: Reply,
}

/// The worker half of the completion channel: post a result, wake the
/// reactor.
#[derive(Clone)]
pub struct CompletionSender {
    tx: Sender<Completion>,
    waker: Arc<Waker>,
}

impl CompletionSender {
    /// Pair a sender with the reactor's waker.
    pub fn new(tx: Sender<Completion>, waker: Arc<Waker>) -> Self {
        Self { tx, waker }
    }

    /// Post one completion and wake the reactor. A disconnected reactor
    /// (shutdown race) is ignored.
    pub fn send(&self, completion: Completion) {
        if self.tx.send(completion).is_ok() {
            self.waker.wake();
        }
    }
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<(u64, u64, String)>,
    closed: bool,
}

/// Outcome of a dispatch attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// The line was queued; its reply will arrive as a [`Completion`].
    Queued,
    /// The target queue was full and the line was data-plane: the caller
    /// answers `overloaded` at this line's position itself.
    Shed,
}

/// A fixed pool of worker threads, each with its own bounded FIFO queue,
/// processing request lines through one shared [`NdjsonService`].
pub struct WorkerPool {
    queues: Vec<Arc<Queue>>,
    capacity: usize,
    depth: Arc<AtomicI64>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Start `workers` threads (clamped to ≥ 1), each with a
    /// `capacity`-slot queue, posting replies through `completions`.
    pub fn start<S: NdjsonService>(
        service: Arc<S>,
        workers: usize,
        capacity: usize,
        completions: CompletionSender,
    ) -> Self {
        let workers = workers.max(1);
        let capacity = capacity.max(1);
        let depth = Arc::new(AtomicI64::new(0));
        let queues: Vec<Arc<Queue>> = (0..workers)
            .map(|_| {
                Arc::new(Queue {
                    state: Mutex::new(QueueState {
                        jobs: VecDeque::new(),
                        closed: false,
                    }),
                    ready: Condvar::new(),
                })
            })
            .collect();
        let handles = queues
            .iter()
            .map(|queue| {
                let queue = Arc::clone(queue);
                let service = Arc::clone(&service);
                let completions = completions.clone();
                let depth = Arc::clone(&depth);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut state = queue.state.lock().unwrap();
                        loop {
                            if let Some(job) = state.jobs.pop_front() {
                                break job;
                            }
                            if state.closed {
                                return;
                            }
                            state = queue.ready.wait(state).unwrap();
                        }
                    };
                    depth.fetch_sub(1, Ordering::Relaxed);
                    let (conn, seq, line) = job;
                    // A panicking handler must not wedge the connection:
                    // the line still gets a reply at its position.
                    let reply = catch_unwind(AssertUnwindSafe(|| service.process(&line)))
                        .unwrap_or_else(|_| Reply {
                            line: service.internal_error_reply("request handler panicked"),
                            shutdown: false,
                        });
                    completions.send(Completion { conn, seq, reply });
                })
            })
            .collect();
        Self {
            queues,
            capacity,
            depth,
            handles,
        }
    }

    /// Dispatch one line. `Data` lines may shed; `Control` lines always
    /// queue (on worker 0). Callers handle `RouteClass::Immediate` and
    /// `RouteClass::Deferred` themselves — passing either here routes
    /// like `Control`.
    pub fn submit(&self, class: RouteClass, conn: u64, seq: u64, line: String) -> Dispatch {
        let workers = self.queues.len() as u64;
        let (index, sheddable) = match class {
            RouteClass::Data(key) => ((key % workers) as usize, true),
            RouteClass::PerConnection => ((conn % workers) as usize, false),
            RouteClass::Control | RouteClass::Immediate | RouteClass::Deferred => (0, false),
        };
        let queue = &self.queues[index];
        let mut state = queue.state.lock().unwrap();
        if sheddable && state.jobs.len() >= self.capacity {
            return Dispatch::Shed;
        }
        state.jobs.push_back((conn, seq, line));
        self.depth.fetch_add(1, Ordering::Relaxed);
        queue.ready.notify_one();
        Dispatch::Queued
    }

    /// Jobs queued but not yet picked up, across all workers.
    pub fn depth(&self) -> i64 {
        self.depth.load(Ordering::Relaxed).max(0)
    }

    /// Close the queues and join every worker. Queued jobs are still
    /// processed; their completions land in the channel for the caller
    /// to drain (or drop).
    pub fn finish(mut self) {
        for queue in &self.queues {
            queue.state.lock().unwrap().closed = true;
            queue.ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{self, Receiver};

    /// Echo service: replies with the line itself; "boom" panics.
    struct Echo;
    impl NdjsonService for Echo {
        fn classify(&self, _line: &str) -> RouteClass {
            RouteClass::Data(0)
        }
        fn process(&self, line: &str) -> Reply {
            if line == "boom" {
                panic!("kaboom");
            }
            Reply {
                line: line.to_string(),
                shutdown: false,
            }
        }
        fn overloaded_reply(&self) -> String {
            "overloaded".into()
        }
        fn parse_error_reply(&self, _detail: &str) -> String {
            "parse-error".into()
        }
    }

    fn pool(workers: usize, capacity: usize) -> (WorkerPool, Receiver<Completion>, Arc<Waker>) {
        let (tx, rx) = mpsc::channel();
        let waker = Arc::new(Waker::new().unwrap());
        let pool = WorkerPool::start(
            Arc::new(Echo),
            workers,
            capacity,
            CompletionSender::new(tx, Arc::clone(&waker)),
        );
        (pool, rx, waker)
    }

    #[test]
    fn sticky_keys_complete_in_submission_order() {
        let (pool, rx, _waker) = pool(4, 64);
        for seq in 0..32u64 {
            assert_eq!(
                pool.submit(RouteClass::Data(9), 1, seq, format!("line-{seq}")),
                Dispatch::Queued
            );
        }
        let mut seen = Vec::new();
        for _ in 0..32 {
            let c = rx.recv().unwrap();
            seen.push(c.seq);
            assert_eq!(c.reply.line, format!("line-{}", c.seq));
        }
        // One sticky key → one FIFO worker → strictly ordered completions.
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
        pool.finish();
    }

    #[test]
    fn full_queues_shed_data_but_not_control() {
        let (pool, rx, _waker) = pool(1, 1);
        // Wedge the single worker with a job, then fill the queue.
        pool.submit(RouteClass::Data(0), 1, 0, "a".into());
        let mut shed = 0;
        for seq in 1..64u64 {
            if pool.submit(RouteClass::Data(0), 1, seq, "b".into()) == Dispatch::Shed {
                shed += 1;
            }
        }
        assert!(shed > 0, "a capacity-1 queue must shed under a burst");
        // Control lines are never shed even when the queue is past
        // capacity.
        assert_eq!(
            pool.submit(RouteClass::Control, 1, 99, "flush".into()),
            Dispatch::Queued
        );
        pool.finish();
        let replies: Vec<Completion> = rx.try_iter().collect();
        assert!(replies.iter().any(|c| c.seq == 99));
        assert_eq!(replies.len() as u64, 64 - shed + 1);
    }

    #[test]
    fn a_panicking_handler_still_answers_its_position() {
        let (pool, rx, _waker) = pool(1, 8);
        pool.submit(RouteClass::Data(0), 1, 0, "boom".into());
        pool.submit(RouteClass::Data(0), 1, 1, "after".into());
        let first = rx.recv().unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(first.reply.line, "parse-error");
        let second = rx.recv().unwrap();
        assert_eq!(second.reply.line, "after");
        pool.finish();
    }
}
