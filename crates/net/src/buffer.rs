//! Incremental NDJSON line framing and backpressure-aware write
//! buffering for non-blocking sockets.

use std::io::{self, Write};

/// Accumulates bytes from non-blocking reads and yields complete
//  newline-terminated frames, however the bytes were fragmented.
/// A frame is everything up to (and excluding) the `\n`; a trailing `\r`
/// is stripped. Bytes after the last newline stay buffered until more
/// arrive.
pub struct LineFramer {
    buf: Vec<u8>,
    /// Scan resume offset: everything before it is known newline-free.
    scanned: usize,
    max_line: usize,
    overflowed: bool,
}

impl LineFramer {
    /// A framer refusing lines longer than `max_line` bytes.
    pub fn new(max_line: usize) -> Self {
        Self {
            buf: Vec::new(),
            scanned: 0,
            max_line: max_line.max(1),
            overflowed: false,
        }
    }

    /// Append freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True once a single line exceeded the size cap. The connection is
    /// beyond repair (the frame boundary is lost); callers should close.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Take the next complete line out of the buffer, if any.
    pub fn next_line(&mut self) -> Option<Vec<u8>> {
        let nl = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| i + self.scanned);
        match nl {
            Some(i) => {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scanned = 0;
                if line.len() > self.max_line {
                    self.overflowed = true;
                }
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                if self.buf.len() > self.max_line {
                    self.overflowed = true;
                }
                None
            }
        }
    }

    /// Bytes currently buffered (a partial line).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// An outgoing byte queue flushed opportunistically against a
/// non-blocking writer. `WouldBlock` leaves the remainder queued; the
/// caller registers write interest and retries when the socket drains.
#[derive(Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one reply line (the `\n` is appended here).
    pub fn push_line(&mut self, line: &str) {
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
    }

    /// Unwritten bytes still queued.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Write as much as the socket accepts. `Ok(true)` means fully
    /// drained; `Ok(false)` means `WouldBlock` with bytes remaining.
    /// Any other I/O error is the connection's death.
    pub fn try_flush<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepts no bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }

    /// Drop already-written bytes once they dominate the allocation, so a
    /// long-lived slow connection does not pin its high-water mark.
    fn compact(&mut self) {
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmented_pushes_reassemble_lines() {
        let mut f = LineFramer::new(1024);
        f.push(b"{\"op\":\"in");
        assert!(f.next_line().is_none());
        f.push(b"gest\"}\r\n{\"op\":");
        assert_eq!(f.next_line().unwrap(), b"{\"op\":\"ingest\"}");
        assert!(f.next_line().is_none());
        f.push(b"\"flush\"}\n");
        assert_eq!(f.next_line().unwrap(), b"{\"op\":\"flush\"}");
        assert!(f.next_line().is_none());
        assert_eq!(f.pending_bytes(), 0);
    }

    #[test]
    fn many_lines_in_one_push_come_out_in_order() {
        let mut f = LineFramer::new(1024);
        f.push(b"a\nb\nc\n");
        assert_eq!(f.next_line().unwrap(), b"a");
        assert_eq!(f.next_line().unwrap(), b"b");
        assert_eq!(f.next_line().unwrap(), b"c");
        assert!(f.next_line().is_none());
    }

    #[test]
    fn an_endless_line_trips_the_overflow_guard() {
        let mut f = LineFramer::new(8);
        f.push(b"0123456789abcdef");
        assert!(f.next_line().is_none());
        assert!(f.overflowed());
    }

    #[test]
    fn write_buffer_reports_partial_progress() {
        /// Writer accepting at most 4 bytes per call, then blocking once.
        struct Dribble {
            accepted: Vec<u8>,
            block_next: bool,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.block_next {
                    self.block_next = false;
                    return Err(io::Error::from(io::ErrorKind::WouldBlock));
                }
                let n = buf.len().min(4);
                self.accepted.extend_from_slice(&buf[..n]);
                self.block_next = true;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut out = WriteBuffer::new();
        out.push_line("hello world");
        let mut w = Dribble {
            accepted: Vec::new(),
            block_next: false,
        };
        let mut drained = out.try_flush(&mut w).unwrap();
        while !drained {
            drained = out.try_flush(&mut w).unwrap();
        }
        assert_eq!(w.accepted, b"hello world\n");
        assert!(out.is_empty());
    }
}
