//! # weber-net — minimal epoll event-loop networking
//!
//! The serving tiers' original front ends spent one OS thread per
//! connection; at tens of thousands of mostly-idle persistent
//! connections that is tens of thousands of stacks doing nothing. This
//! crate replaces them with a single-reactor design built directly on
//! raw `epoll`/`eventfd` syscalls (the build is offline and Linux-only,
//! so there is no `mio`, no `tokio`, no `libc` — just the half-dozen
//! foreign declarations in [`sys`]):
//!
//! * [`Poller`] / [`Waker`] — level-triggered readiness over epoll with
//!   an eventfd cross-thread wake-up.
//! * [`LineFramer`] / [`WriteBuffer`] — incremental NDJSON framing and
//!   backpressure-aware writes for non-blocking sockets.
//! * [`WorkerPool`] — bounded per-worker FIFO queues with sticky
//!   data-plane routing and never-shed control lines.
//! * [`serve`] + [`NdjsonService`] — the reactor loop itself: accept,
//!   frame, classify, dispatch, reorder, flush, evict, drain.
//!
//! A serving tier implements [`NdjsonService`] (classify + process) and
//! gets 10k+ connection capacity with per-connection reply ordering for
//! free. Both `weber serve` and `weber route` front ends run on it.

mod buffer;
mod poller;
mod pool;
mod server;
mod sys;

pub use buffer::{LineFramer, WriteBuffer};
pub use poller::{
    connect_nonblocking, connect_outcome, raise_nofile_limit, ConnectProgress, Event, Interest,
    Poller, Waker,
};
pub use pool::{Completion, CompletionSender, Dispatch, RouteClass, WorkerPool};
pub use server::{serve, IoMode, NdjsonService, Reply, Responder, ServerOptions};
