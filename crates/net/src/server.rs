//! The event-loop NDJSON server: one reactor thread multiplexing every
//! connection over epoll, a fixed worker pool executing request lines,
//! and a reorder buffer per connection so replies always come back in
//! the order the requests arrived — the wire contract the threaded
//! front ends established.
//!
//! # Ordering and backpressure
//!
//! Each framed line gets a per-connection sequence number at admission.
//! Workers complete out of global order, but a completion is held in the
//! connection's reorder buffer until every earlier sequence number has
//! been emitted, so clients may pipeline freely and still read replies
//! positionally. Two valves bound memory per connection: reads pause
//! while more than `max_pipeline` lines are in flight, and while the
//! write buffer holds more than `write_high_watermark` unsent bytes
//! (a client that never reads its replies stops being read itself).
//!
//! # Shutdown
//!
//! A shutdown line is detected at framing time: the listener closes,
//! reads stop, in-flight work drains (bounded by `drain_grace`), queued
//! replies flush, and the loop exits. Connections still open at that
//! point are dropped, matching the threaded front ends.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use weber_obs::Registry;

use crate::buffer::{LineFramer, WriteBuffer};
use crate::poller::{Event, Interest, Poller, Waker};
use crate::pool::{CompletionSender, Dispatch, RouteClass, WorkerPool};

/// Which front-end implementation a CLI-selected listener runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// The epoll reactor in this crate (the default).
    #[default]
    Event,
    /// The legacy thread-per-connection loop, kept as a fallback.
    Threads,
}

impl std::str::FromStr for IoMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" | "epoll" => Ok(IoMode::Event),
            "threads" | "thread" => Ok(IoMode::Threads),
            other => Err(format!(
                "unknown io mode '{other}' (expected 'event' or 'threads')"
            )),
        }
    }
}

/// One reply line, plus whether it ends the server.
pub struct Reply {
    /// The NDJSON reply (no trailing newline).
    pub line: String,
    /// True if the server should begin draining after emitting this.
    pub shutdown: bool,
}

/// The write-half of one admitted line's reply slot, handed to
/// [`NdjsonService::process_deferred`] for lines classified
/// [`RouteClass::Deferred`]. The service answers from any thread, later:
/// the reply lands in the completion channel and takes the line's
/// position in the connection's reply order, exactly as a worker-pool
/// completion would. Dropping a responder without responding would leave
/// the position unanswered (and the connection's pipeline valve jammed),
/// so [`respond`](Responder::respond) must be called exactly once.
pub struct Responder {
    sender: CompletionSender,
    conn: u64,
    seq: u64,
}

impl Responder {
    /// Deliver the reply for this line's position.
    pub fn respond(self, reply: Reply) {
        self.sender.send(crate::pool::Completion {
            conn: self.conn,
            seq: self.seq,
            reply,
        });
    }
}

/// The request-side contract a serving tier implements to run on the
/// event loop. One instance is shared by every worker thread.
pub trait NdjsonService: Send + Sync + 'static {
    /// Decide where a line executes. Called on the reactor thread, so it
    /// must be cheap — peek at the line, do not process it.
    fn classify(&self, line: &str) -> RouteClass;

    /// Execute one request line and produce its reply. Called on worker
    /// threads (or the reactor thread for `RouteClass::Immediate`).
    fn process(&self, line: &str) -> Reply;

    /// The reply for a line shed by a full queue or a refused connection.
    fn overloaded_reply(&self) -> String;

    /// The reply for a line that could not be decoded (bad UTF-8,
    /// oversized frame).
    fn parse_error_reply(&self, detail: &str) -> String;

    /// The reply for a handler failure. Defaults to the parse-error
    /// shape; tiers with a richer error vocabulary can override.
    fn internal_error_reply(&self, detail: &str) -> String {
        self.parse_error_reply(detail)
    }

    /// Start asynchronous processing for a [`RouteClass::Deferred`] line.
    /// Called on the reactor thread, so it must not block: kick off the
    /// outbound work and return; answer through `responder` when done.
    /// The default falls back to synchronous processing so services that
    /// never classify `Deferred` need not implement it.
    fn process_deferred(&self, line: &str, responder: Responder) {
        responder.respond(self.process(line));
    }

    /// True if this line asks the server to shut down. Detected at
    /// framing time so the listener closes before the line even runs.
    fn is_shutdown_line(&self, _line: &str) -> bool {
        false
    }
}

/// Tuning for [`serve`]. `Default` suits tests; the CLI front ends build
/// one from their flags.
pub struct ServerOptions {
    /// Worker threads executing request lines.
    pub workers: usize,
    /// Bounded queue slots per worker; data lines beyond this shed.
    pub queue_capacity: usize,
    /// Accepted connections beyond this get one `overloaded` line and an
    /// immediate close.
    pub max_connections: usize,
    /// Evict connections silent for this long. `None` (the default)
    /// never evicts — routers keep pooled backend connections idle for
    /// minutes by design.
    pub idle_timeout: Option<Duration>,
    /// Lines admitted but unanswered per connection before its reads
    /// pause.
    pub max_pipeline: usize,
    /// Unsent reply bytes per connection before its reads pause.
    pub write_high_watermark: usize,
    /// Longest accepted request line.
    pub max_line_bytes: usize,
    /// How long shutdown waits for in-flight lines to drain.
    pub drain_grace: Duration,
    /// Where to surface `net.*` metrics, if anywhere.
    pub registry: Option<Arc<Registry>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 1024,
            max_connections: 1024,
            idle_timeout: None,
            max_pipeline: 256,
            write_high_watermark: 256 * 1024,
            max_line_bytes: 1024 * 1024,
            drain_grace: Duration::from_secs(5),
            registry: None,
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 16 * 1024;

struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    out: WriteBuffer,
    /// Completed replies waiting for earlier sequence numbers.
    reorder: BTreeMap<u64, String>,
    /// Next sequence number to assign at admission.
    next_seq: u64,
    /// Next sequence number to emit to the write buffer.
    next_emit: u64,
    /// Registered epoll interest, to skip redundant `EPOLL_CTL_MOD`s.
    interest: Interest,
    /// Peer sent EOF (or the frame stream is beyond repair).
    read_closed: bool,
    last_activity: Instant,
}

impl Conn {
    fn in_flight(&self) -> u64 {
        self.next_seq - self.next_emit
    }

    /// Move contiguous completed replies from the reorder buffer into
    /// the write buffer.
    fn emit_ready(&mut self) {
        while let Some(line) = self.reorder.remove(&self.next_emit) {
            self.out.push_line(&line);
            self.next_emit += 1;
        }
    }

    /// Fully served: peer stopped sending, nothing in flight, nothing
    /// left to write.
    fn finished(&self) -> bool {
        self.read_closed && self.in_flight() == 0 && self.out.is_empty()
    }

    fn drained(&self) -> bool {
        self.in_flight() == 0 && self.out.is_empty()
    }
}

struct NetMetrics {
    connections: Arc<weber_obs::Gauge>,
    accepted: Arc<weber_obs::Counter>,
    refused: Arc<weber_obs::Counter>,
    lines: Arc<weber_obs::Counter>,
    shed: Arc<weber_obs::Counter>,
    idle_closed: Arc<weber_obs::Counter>,
}

impl NetMetrics {
    fn new(registry: Option<&Arc<Registry>>) -> Option<Self> {
        registry.map(|r| Self {
            connections: r.gauge("net.connections"),
            accepted: r.counter("net.accepted_total"),
            refused: r.counter("net.refused_total"),
            lines: r.counter("net.lines_total"),
            shed: r.counter("net.shed_total"),
            idle_closed: r.counter("net.idle_closed_total"),
        })
    }
}

/// Run the event loop until a shutdown line arrives (or the listener
/// dies). Returns the number of request lines admitted across all
/// connections — the same count the threaded front ends report.
pub fn serve<S: NdjsonService>(
    service: Arc<S>,
    listener: TcpListener,
    options: ServerOptions,
) -> io::Result<u64> {
    listener.set_nonblocking(true)?;
    let metrics = NetMetrics::new(options.registry.as_ref());

    let mut poller = Poller::new(1024)?;
    let waker = Arc::new(Waker::new()?);
    let (tx, completions): (_, Receiver<crate::pool::Completion>) = mpsc::channel();
    let completion_sender = CompletionSender::new(tx, Arc::clone(&waker));
    let pool = WorkerPool::start(
        Arc::clone(&service),
        options.workers,
        options.queue_capacity,
        completion_sender.clone(),
    );

    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.add(waker.raw_fd(), TOKEN_WAKER, Interest::READ)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut admitted: u64 = 0;
    let mut shutting_down = false;
    let mut drain_deadline: Option<Instant> = None;
    let mut events: Vec<Event> = Vec::with_capacity(1024);
    let mut last_idle_sweep = Instant::now();
    let mut closed: Vec<u64> = Vec::new();

    'reactor: loop {
        events.clear();
        let timeout = if shutting_down {
            Some(Duration::from_millis(20))
        } else if options.idle_timeout.is_some() {
            Some(Duration::from_millis(200))
        } else {
            None
        };
        poller.wait(&mut events, timeout)?;
        let now = Instant::now();

        for event in events.iter().copied() {
            match event.token {
                TOKEN_LISTENER => {
                    if shutting_down {
                        continue;
                    }
                    accept_ready(
                        &listener,
                        &mut poller,
                        &mut conns,
                        &mut next_token,
                        &options,
                        service.as_ref(),
                        metrics.as_ref(),
                        now,
                    );
                }
                TOKEN_WAKER => waker.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // already closed this iteration
                    };
                    let mut dead = false;
                    if event.writable && !conn.out.is_empty() {
                        match conn.out.try_flush(&mut conn.stream) {
                            Ok(_) => conn.last_activity = now,
                            Err(_) => dead = true,
                        }
                    }
                    if !dead && (event.readable || event.hangup) && !conn.read_closed {
                        match read_and_frame(
                            conn,
                            token,
                            &pool,
                            &completion_sender,
                            service.as_ref(),
                            &options,
                            &mut admitted,
                            &mut shutting_down,
                            metrics.as_ref(),
                            now,
                        ) {
                            Ok(()) => {}
                            Err(_) => dead = true,
                        }
                    } else if !dead && event.hangup && conn.out.is_empty() {
                        // Peer is gone and nothing is owed to it.
                        dead = conn.in_flight() == 0;
                    }
                    if dead || conn.finished() {
                        closed.push(token);
                    }
                }
            }
        }

        drain_completions(
            &completions,
            &mut conns,
            &mut shutting_down,
            metrics.as_ref(),
        );

        // Idle eviction, amortised to a periodic sweep.
        if let Some(idle) = options.idle_timeout {
            if now.duration_since(last_idle_sweep) >= Duration::from_millis(200).min(idle) {
                last_idle_sweep = now;
                for (&token, conn) in conns.iter() {
                    if now.duration_since(conn.last_activity) >= idle && conn.in_flight() == 0 {
                        if let Some(m) = metrics.as_ref() {
                            m.idle_closed.inc();
                        }
                        closed.push(token);
                    }
                }
            }
        }

        // Recompute interest and reap finished connections. This pass
        // also re-pumps framing: completions may have reopened the
        // pipelining valve while decoded-but-unframed bytes sat in the
        // framer, and a quiet socket would never re-report readable.
        for (&token, conn) in conns.iter_mut() {
            if conn.framer.pending_bytes() > 0
                && !conn.read_closed
                && conn.in_flight() < options.max_pipeline as u64
            {
                frame_pending(
                    conn,
                    token,
                    &pool,
                    &completion_sender,
                    service.as_ref(),
                    &options,
                    &mut admitted,
                    &mut shutting_down,
                    metrics.as_ref(),
                );
                conn.emit_ready();
                if !conn.out.is_empty() && conn.out.try_flush(&mut conn.stream).is_err() {
                    closed.push(token);
                    continue;
                }
            }
            if conn.finished() {
                closed.push(token);
                continue;
            }
            let want = Interest {
                readable: !conn.read_closed
                    && !shutting_down
                    && conn.in_flight() < options.max_pipeline as u64
                    && conn.out.pending() <= options.write_high_watermark,
                writable: !conn.out.is_empty(),
            };
            if want != conn.interest {
                if poller.modify(conn.stream.as_raw_fd(), token, want).is_err() {
                    closed.push(token);
                } else {
                    conn.interest = want;
                }
            }
        }
        if !closed.is_empty() {
            closed.sort_unstable();
            closed.dedup();
            for token in closed.drain(..) {
                if conns.remove(&token).is_some() {
                    if let Some(m) = metrics.as_ref() {
                        m.connections.sub(1);
                    }
                }
            }
        }

        if shutting_down {
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + options.drain_grace);
            let all_drained = pool.depth() == 0 && conns.values().all(Conn::drained);
            if all_drained || Instant::now() >= deadline {
                break 'reactor;
            }
        }
    }

    drop(listener);
    pool.finish();
    // Flush any replies that completed during the final drain window.
    drain_completions(
        &completions,
        &mut conns,
        &mut shutting_down,
        metrics.as_ref(),
    );
    for conn in conns.values_mut() {
        conn.emit_ready();
        let _ = conn.stream.set_nonblocking(false);
        let _ = conn
            .stream
            .set_write_timeout(Some(Duration::from_millis(500)));
        let _ = conn.out.try_flush(&mut conn.stream);
    }
    if let Some(m) = metrics.as_ref() {
        m.connections.set(0);
    }
    Ok(admitted)
}

#[allow(clippy::too_many_arguments)]
fn accept_ready<S: NdjsonService>(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    options: &ServerOptions,
    service: &S,
    metrics: Option<&NetMetrics>,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if conns.len() >= options.max_connections {
                    refuse(stream, service, metrics);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .add(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                conns.insert(
                    token,
                    Conn {
                        stream,
                        framer: LineFramer::new(options.max_line_bytes),
                        out: WriteBuffer::new(),
                        reorder: BTreeMap::new(),
                        next_seq: 0,
                        next_emit: 0,
                        interest: Interest::READ,
                        read_closed: false,
                        last_activity: now,
                    },
                );
                if let Some(m) = metrics {
                    m.accepted.inc();
                    m.connections.add(1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Out of fds or a transient accept failure: leave the rest
            // in the backlog; level-triggered epoll re-reports them.
            Err(_) => break,
        }
    }
}

/// One `overloaded` line, then close — the contract over-cap clients see.
fn refuse<S: NdjsonService>(mut stream: TcpStream, service: &S, metrics: Option<&NetMetrics>) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = stream.write_all(format!("{}\n", service.overloaded_reply()).as_bytes());
    let _ = stream.flush();
    if let Some(m) = metrics {
        m.refused.inc();
    }
}

/// Pull bytes off a readable socket, frame complete lines, and dispatch
/// them. Returns `Err` only when the connection must close immediately.
#[allow(clippy::too_many_arguments)]
fn read_and_frame<S: NdjsonService>(
    conn: &mut Conn,
    token: u64,
    pool: &WorkerPool,
    completions: &CompletionSender,
    service: &S,
    options: &ServerOptions,
    admitted: &mut u64,
    shutting_down: &mut bool,
    metrics: Option<&NetMetrics>,
    now: Instant,
) -> io::Result<()> {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        // Respect the pipelining valve even within one readable burst.
        if conn.in_flight() >= options.max_pipeline as u64
            || conn.out.pending() > options.write_high_watermark
        {
            break;
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = now;
                conn.framer.push(&chunk[..n]);
                frame_pending(
                    conn,
                    token,
                    pool,
                    completions,
                    service,
                    options,
                    admitted,
                    shutting_down,
                    metrics,
                );
                if conn.framer.overflowed() && !conn.read_closed {
                    // A partial line outgrew the cap with no newline in
                    // sight: the frame boundary is lost. Answer once and
                    // hang up.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.reorder
                        .insert(seq, service.parse_error_reply("request line too long"));
                    conn.read_closed = true;
                    break;
                }
                if conn.read_closed || *shutting_down {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    frame_pending(
        conn,
        token,
        pool,
        completions,
        service,
        options,
        admitted,
        shutting_down,
        metrics,
    );
    conn.emit_ready();
    if !conn.out.is_empty() && conn.out.try_flush(&mut conn.stream).is_err() {
        return Err(io::Error::from(io::ErrorKind::BrokenPipe));
    }
    Ok(())
}

/// Frame and dispatch as many buffered lines as the pipelining valve
/// allows.
#[allow(clippy::too_many_arguments)]
fn frame_pending<S: NdjsonService>(
    conn: &mut Conn,
    token: u64,
    pool: &WorkerPool,
    completions: &CompletionSender,
    service: &S,
    options: &ServerOptions,
    admitted: &mut u64,
    shutting_down: &mut bool,
    metrics: Option<&NetMetrics>,
) {
    while conn.in_flight() < options.max_pipeline as u64 && !conn.read_closed {
        if conn.framer.overflowed() {
            break;
        }
        let Some(raw) = conn.framer.next_line() else {
            break;
        };
        if conn.framer.overflowed() {
            // A complete line arrived but blew the size cap: answer at
            // its position and stop reading this connection.
            *admitted += 1;
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.reorder
                .insert(seq, service.parse_error_reply("request line too long"));
            conn.read_closed = true;
            break;
        }
        let line = match String::from_utf8(raw) {
            Ok(line) => line,
            Err(_) => {
                // Undecodable line: it still occupies a reply position.
                *admitted += 1;
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.reorder
                    .insert(seq, service.parse_error_reply("request is not valid UTF-8"));
                continue;
            }
        };
        if line.trim().is_empty() {
            continue; // blank keep-alives are skipped, not counted
        }
        *admitted += 1;
        if let Some(m) = metrics {
            m.lines.inc();
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        if service.is_shutdown_line(&line) {
            *shutting_down = true;
        }
        match service.classify(&line) {
            RouteClass::Immediate => {
                let reply = service.process(&line);
                if reply.shutdown {
                    *shutting_down = true;
                }
                conn.reorder.insert(seq, reply.line);
            }
            RouteClass::Deferred => {
                // The line's reply slot travels with the responder; the
                // service answers through the completion channel when its
                // outbound work finishes.
                service.process_deferred(
                    &line,
                    Responder {
                        sender: completions.clone(),
                        conn: token,
                        seq,
                    },
                );
            }
            class => match pool.submit(class, token, seq, line) {
                Dispatch::Queued => {}
                Dispatch::Shed => {
                    if let Some(m) = metrics {
                        m.shed.inc();
                    }
                    conn.reorder.insert(seq, service.overloaded_reply());
                }
            },
        }
        if *shutting_down {
            break;
        }
    }
}

/// Move completed replies into their connections' reorder buffers and
/// flush whatever became contiguous.
fn drain_completions(
    completions: &Receiver<crate::pool::Completion>,
    conns: &mut HashMap<u64, Conn>,
    shutting_down: &mut bool,
    metrics: Option<&NetMetrics>,
) {
    let _ = metrics;
    while let Ok(completion) = completions.try_recv() {
        if completion.reply.shutdown {
            *shutting_down = true;
        }
        if let Some(conn) = conns.get_mut(&completion.conn) {
            conn.reorder.insert(completion.seq, completion.reply.line);
            conn.emit_ready();
            if !conn.out.is_empty() {
                // Opportunistic flush; WouldBlock leaves bytes
                // queued and the interest pass arms EPOLLOUT.
                let _ = conn.out.try_flush(&mut conn.stream);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream as ClientStream;

    /// Uppercases lines; `{"op":"shutdown"}` ends the server; "slow"
    /// sleeps to create reordering pressure across keys.
    struct Upper;
    impl NdjsonService for Upper {
        fn classify(&self, line: &str) -> RouteClass {
            if line.contains("health") {
                RouteClass::Immediate
            } else if line.contains("shutdown") {
                RouteClass::Control
            } else {
                // Spread by length so different lines land on different
                // workers, exercising the reorder buffer.
                RouteClass::Data(line.len() as u64)
            }
        }
        fn process(&self, line: &str) -> Reply {
            if line.contains("slow") {
                std::thread::sleep(Duration::from_millis(30));
            }
            Reply {
                line: line.to_uppercase(),
                shutdown: line.contains("shutdown"),
            }
        }
        fn overloaded_reply(&self) -> String {
            "overloaded".into()
        }
        fn parse_error_reply(&self, detail: &str) -> String {
            format!("error:{detail}")
        }
        fn is_shutdown_line(&self, line: &str) -> bool {
            line.contains("shutdown")
        }
    }

    fn start(options: ServerOptions) -> (std::net::SocketAddr, std::thread::JoinHandle<u64>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(Arc::new(Upper), listener, options).unwrap());
        (addr, handle)
    }

    #[test]
    fn pipelined_replies_come_back_in_request_order() {
        let (addr, handle) = start(ServerOptions::default());
        let mut client = ClientStream::connect(addr).unwrap();
        // One slow line first: its reply must still come back first.
        client
            .write_all(b"slow alpha\nbeta\ngamma\ndelta omega\n")
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut lines = Vec::new();
        for _ in 0..4 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(lines, ["SLOW ALPHA", "BETA", "GAMMA", "DELTA OMEGA"]);
        client.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(handle.join().unwrap(), 5);
    }

    #[test]
    fn byte_at_a_time_clients_still_get_framed() {
        let (addr, handle) = start(ServerOptions::default());
        let mut client = ClientStream::connect(addr).unwrap();
        for b in b"trickle\n" {
            client.write_all(&[*b]).unwrap();
            client.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "TRICKLE");
        client.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn over_cap_connections_get_one_overloaded_line() {
        let options = ServerOptions {
            max_connections: 1,
            ..ServerOptions::default()
        };
        let (addr, handle) = start(options);
        let first = ClientStream::connect(addr).unwrap();
        // Make sure the reactor registered the first connection before
        // the second arrives.
        std::thread::sleep(Duration::from_millis(50));
        let second = ClientStream::connect(addr).unwrap();
        let mut reader = BufReader::new(second);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "overloaded");
        // ...and the socket closes right after.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);
        let mut first = first;
        first.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn idle_connections_are_evicted() {
        let options = ServerOptions {
            idle_timeout: Some(Duration::from_millis(150)),
            ..ServerOptions::default()
        };
        let (addr, handle) = start(options);
        let idle = ClientStream::connect(addr).unwrap();
        let mut reader = BufReader::new(idle);
        let mut line = String::new();
        // The server closes us without a word once the timeout passes.
        let n = reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "expected eviction EOF, got {line:?}");
        let mut closer = ClientStream::connect(addr).unwrap();
        closer.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn invalid_utf8_lines_get_positional_errors() {
        let (addr, handle) = start(ServerOptions::default());
        let mut client = ClientStream::connect(addr).unwrap();
        client.write_all(b"ok1\n\xff\xfe\xfd\nok2\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(lines[0], "OK1");
        assert!(lines[1].starts_with("error:"), "got {:?}", lines[1]);
        assert_eq!(lines[2], "OK2");
        client.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        assert_eq!(handle.join().unwrap(), 4);
    }
}
