//! A thin, token-based readiness poller over [`sys::Epoll`], plus the
//! [`Waker`] that lets worker threads interrupt a sleeping poll.

use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::sys::{
    self, Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
    EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};

/// One readiness report, decoded from the kernel event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Data (or EOF) can be read.
    pub readable: bool,
    /// The socket can accept more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored; treat as readable so the read
    /// path observes the EOF/error and closes cleanly.
    pub hangup: bool,
}

/// What a registration is interested in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable.
    pub readable: bool,
    /// Wake on writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// Level-triggered readiness poller. Registrations carry a caller-chosen
/// `u64` token that comes back verbatim in [`Event::token`].
pub struct Poller {
    epoll: Epoll,
    events: Vec<EpollEvent>,
}

impl Poller {
    /// A poller able to report up to `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Self> {
        Ok(Self {
            epoll: Epoll::new()?,
            events: vec![EpollEvent { events: 0, data: 0 }; capacity.max(16)],
        })
    }

    /// Register an fd under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.ctl(EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Change an existing registration's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.epoll.ctl(EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Drop an fd's registration. (Closing the fd drops it implicitly;
    /// this exists for fds that outlive their registration.)
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.epoll.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout` for readiness and append decoded events to
    /// `out`. `None` blocks indefinitely.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            None => -1,
            Some(t) => i32::try_from(t.as_millis()).unwrap_or(i32::MAX),
        };
        let n = self.epoll.wait(&mut self.events, timeout_ms)?;
        for raw in &self.events[..n] {
            let bits = raw.events;
            out.push(Event {
                token: raw.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

/// A cross-thread wake-up for a poller: register [`Waker::raw_fd`] with
/// read interest, call [`Waker::wake`] from any thread, and
/// [`Waker::drain`] when the token fires. Consecutive wakes coalesce into
/// one syscall while the poller has not drained yet.
pub struct Waker {
    event_fd: EventFd,
    armed: AtomicBool,
}

impl Waker {
    /// A fresh waker.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            event_fd: EventFd::new()?,
            armed: AtomicBool::new(false),
        })
    }

    /// The fd to register with the poller.
    pub fn raw_fd(&self) -> RawFd {
        self.event_fd.raw_fd()
    }

    /// Wake the poller (no-op if a wake is already pending).
    pub fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            self.event_fd.signal();
        }
    }

    /// Clear the pending wake so the next [`wake`](Self::wake) signals
    /// again.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        self.event_fd.drain();
    }
}

/// Re-export for front ends and the load generator.
pub use sys::raise_nofile_limit;
/// Re-exports for outbound (client-side) reactors: begin a connect
/// without blocking, finish it when `EPOLLOUT` fires.
pub use sys::{connect_nonblocking, connect_outcome, ConnectProgress};
